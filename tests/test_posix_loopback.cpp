// Flagship integration test for the posix backend: client, middlebox, and
// server run as three epoll loops on three threads, talking only through
// real TCP over 127.0.0.1 — the deployment shape the paper's middlebox
// occupies, with no simulator anywhere in the path.
//
// Thread discipline: each loop (and every session/binding living on it) is
// touched only by its own thread; the main thread wires listeners/dials
// before the threads start, communicates through atomics set inside loop
// callbacks, and inspects heavyweight state only after join().
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "mbtls/cache.h"
#include "mbtls/transport.h"
#include "net/posix/epoll_loop.h"
#include "net/posix/loop_group.h"
#include "tests/tls_test_util.h"

namespace mbtls::mb {
namespace {

using namespace net;
using net::posix::EpollLoop;
using net::posix::LoopGroup;
using tls::testing::make_identity;
using tls::testing::test_ca;

void drive(EpollLoop& loop, const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_relaxed)) loop.poll_once(kMillisecond);
}

/// Chain an application-level poll after the binding's own data handler.
template <typename F>
void on_data_then(Stream& s, F poll) {
  s.on_data = [inner = std::move(s.on_data), poll](ByteView d) {
    if (inner) inner(d);
    poll();
  };
}

template <typename F>
void on_close_then(Stream& s, F then) {
  s.on_close = [inner = std::move(s.on_close), then] {
    if (inner) inner();
    then();
  };
}

bool await(const std::atomic<bool>& flag, int timeout_ms = 20'000) {
  for (int waited = 0; waited < timeout_ms; waited += 10) {
    if (flag.load(std::memory_order_acquire)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return flag.load(std::memory_order_acquire);
}

TEST(PosixLoopback, FullMbtlsSessionAcrossThreeProcessesWorthOfLoops) {
  const auto server_id = make_identity("loop.example");
  const auto mbox_id = make_identity("loopproxy.example");
  crypto::Drbg rng("loopback-payload", 7);
  const Bytes request = rng.bytes(96 * 1024);   // multiple records, multiple segments
  const Bytes response = rng.bytes(64 * 1024);

  std::atomic<bool> stop{false};
  std::atomic<bool> client_teardown{false}, server_teardown{false};

  // --- server machine -------------------------------------------------------
  EpollLoop server_loop;
  ServerSession::Options sopts;
  sopts.tls.private_key = server_id.key;
  sopts.tls.certificate_chain = server_id.chain;
  sopts.tls.rng_seed = 901;
  ServerSession server(std::move(sopts));
  std::unique_ptr<SocketBinding<ServerSession>> server_binding;
  Bytes server_got;
  bool server_responded = false;
  const Port server_port = server_loop.listen_stream(0, [&](Stream& s) {
    server_binding = std::make_unique<SocketBinding<ServerSession>>(server, s);
    on_data_then(s, [&] {
      append(server_got, server.take_app_data());
      if (!server_responded && server.established() && server_got.size() >= request.size()) {
        server_responded = true;
        server.send(response);
        server_binding->flush();
      }
    });
    on_close_then(s, [&] { server_teardown.store(true, std::memory_order_release); });
  });

  // --- middlebox machine ----------------------------------------------------
  EpollLoop mbox_loop;
  Middlebox::Options mopts;
  mopts.name = "loopproxy.example";
  mopts.side = Middlebox::Side::kClientSide;
  mopts.private_key = mbox_id.key;
  mopts.certificate_chain = mbox_id.chain;
  Middlebox mbox(std::move(mopts));
  std::unique_ptr<MiddleboxBinding> mbox_binding;
  const Port mbox_port = mbox_loop.listen_stream(0, [&](Stream& down) {
    Stream& up = mbox_loop.dial({0, server_port, "127.0.0.1"});
    mbox_binding = std::make_unique<MiddleboxBinding>(mbox, down, up);
  });

  // --- client machine -------------------------------------------------------
  EpollLoop client_loop;
  ClientSession::Options copts;
  copts.tls.trust_anchors = {test_ca().root()};
  copts.tls.server_name = "loop.example";
  copts.tls.rng_seed = 900;
  ClientSession client(std::move(copts));
  Stream& client_stream = client_loop.dial({0, mbox_port, "127.0.0.1"});
  client_stream.on_connect = [&] { client.start(); };
  SocketBinding<ClientSession> client_binding(client, client_stream);
  Bytes client_got;
  bool client_sent = false, client_closed_session = false;
  on_data_then(client_stream, [&] {
    if (!client_sent && client.established()) {
      client_sent = true;
      client.send(request);
      client_binding.flush();
    }
    append(client_got, client.take_app_data());
    if (!client_closed_session && client_got.size() >= response.size()) {
      client_closed_session = true;
      client.close();  // close_notify toward the server (one-shot: kClosed)
      client_binding.flush();
      client_stream.close();  // FIN rides behind the alert; server FINs back
    }
  });
  on_close_then(client_stream, [&] { client_teardown.store(true, std::memory_order_release); });

  std::thread ts([&] { drive(server_loop, stop); });
  std::thread tm([&] { drive(mbox_loop, stop); });
  std::thread tc([&] { drive(client_loop, stop); });
  const bool finished = await(client_teardown) && await(server_teardown);
  stop.store(true, std::memory_order_relaxed);
  tc.join();
  tm.join();
  ts.join();

  ASSERT_TRUE(finished) << "teardown never completed; client: " << client.error_message()
                        << " server: " << server.error_message();
  // Full mbTLS handshake happened through the middlebox...
  EXPECT_TRUE(mbox.joined());
  EXPECT_FALSE(mbox.relay_mode());
  // ...payloads were byte-identical in both directions...
  EXPECT_EQ(server_got, request);
  EXPECT_EQ(client_got, response);
  // ...and the close_notify teardown was clean on every hop.
  EXPECT_EQ(client.status(), SessionStatus::kClosed);
  EXPECT_EQ(server.status(), SessionStatus::kClosed);
  EXPECT_FALSE(client.failed());
  EXPECT_FALSE(server.failed());
  EXPECT_TRUE(mbox.saw_close_notify_from_client());
  EXPECT_EQ(client_stream.error(), SocketError::kNone);
  EXPECT_EQ(client_loop.open_streams(), 0u);
}

TEST(PosixLoopback, LegacyClientDemotesMiddleboxToRelay) {
  // A plain-TLS client through the same three-loop topology: the middlebox
  // must demote itself to a transparent relay and the end-to-end handshake
  // and data must pass through byte-intact.
  const auto server_id = make_identity("legacyloop.example");
  const auto mbox_id = make_identity("loopproxy.example");
  constexpr std::string_view kPayload = "legacy through it";

  std::atomic<bool> stop{false};
  std::atomic<bool> client_done{false};

  EpollLoop server_loop;
  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = server_id.key;
  scfg.certificate_chain = server_id.chain;
  tls::Engine server(scfg);
  std::unique_ptr<SocketBinding<tls::Engine>> server_binding;
  Bytes server_got;
  const Port server_port = server_loop.listen_stream(0, [&](Stream& s) {
    server_binding = std::make_unique<SocketBinding<tls::Engine>>(server, s);
    on_data_then(s, [&, stream = &s] {
      append(server_got, server.take_plaintext());
      if (server_got.size() >= kPayload.size()) stream->close();  // got it all: hang up
    });
  });

  EpollLoop mbox_loop;
  Middlebox::Options mopts;
  mopts.name = "loopproxy.example";
  mopts.side = Middlebox::Side::kClientSide;
  mopts.private_key = mbox_id.key;
  mopts.certificate_chain = mbox_id.chain;
  Middlebox mbox(std::move(mopts));
  std::unique_ptr<MiddleboxBinding> mbox_binding;
  const Port mbox_port = mbox_loop.listen_stream(0, [&](Stream& down) {
    Stream& up = mbox_loop.dial({0, server_port, "127.0.0.1"});
    mbox_binding = std::make_unique<MiddleboxBinding>(mbox, down, up);
  });

  EpollLoop client_loop;
  tls::Config ccfg;
  ccfg.is_client = true;
  ccfg.trust_anchors = {test_ca().root()};
  ccfg.server_name = "legacyloop.example";
  tls::Engine client(ccfg);
  Stream& client_stream = client_loop.dial({0, mbox_port, "127.0.0.1"});
  client_stream.on_connect = [&] { client.start(); };
  SocketBinding<tls::Engine> client_binding(client, client_stream);
  bool sent = false;
  on_data_then(client_stream, [&] {
    if (!sent && client.handshake_done()) {
      sent = true;
      client.send(to_bytes(kPayload));
      client_binding.flush();
    }
  });
  on_close_then(client_stream, [&] { client_done.store(true, std::memory_order_release); });

  std::thread ts([&] { drive(server_loop, stop); });
  std::thread tm([&] { drive(mbox_loop, stop); });
  std::thread tc([&] { drive(client_loop, stop); });
  const bool finished = await(client_done);
  stop.store(true, std::memory_order_relaxed);
  tc.join();
  tm.join();
  ts.join();

  ASSERT_TRUE(finished) << client.error_message();
  EXPECT_TRUE(client.handshake_done());
  EXPECT_TRUE(mbox.relay_mode());
  EXPECT_TRUE(mbox.observed_legacy_peer());
  EXPECT_EQ(to_string(server_got), kPayload);
}

TEST(PosixLoopback, ConcurrentSessionsThroughOneMiddlebox) {
  // Several independent mbTLS sessions multiplexed through one middlebox
  // loop — the C10K shape at unit-test scale.
  constexpr int kSessions = 6;
  const auto server_id = make_identity("many.example");
  const auto mbox_id = make_identity("loopproxy.example");

  std::atomic<bool> stop{false};
  std::atomic<int> clients_done{0};

  struct ServerSide {
    std::unique_ptr<ServerSession> session;
    std::unique_ptr<SocketBinding<ServerSession>> binding;
    Bytes got;
  };
  EpollLoop server_loop;
  std::vector<std::unique_ptr<ServerSide>> accepted;
  const Port server_port = server_loop.listen_stream(0, [&](Stream& s) {
    auto side = std::make_unique<ServerSide>();
    ServerSession::Options sopts;
    sopts.tls.private_key = server_id.key;
    sopts.tls.certificate_chain = server_id.chain;
    sopts.tls.rng_seed = 1000 + accepted.size();
    side->session = std::make_unique<ServerSession>(std::move(sopts));
    side->binding = std::make_unique<SocketBinding<ServerSession>>(*side->session, s);
    ServerSide* raw = side.get();
    on_data_then(s, [raw, stream = &s] {
      append(raw->got, raw->session->take_app_data());
      if (raw->got.size() >= 11 && raw->session->established()) {
        raw->session->close();  // close_notify, then FIN right behind it
        raw->binding->flush();
        stream->close();
      }
    });
    accepted.push_back(std::move(side));
  });

  struct MbSide {
    std::unique_ptr<Middlebox> mbox;
    std::unique_ptr<MiddleboxBinding> binding;
  };
  EpollLoop mbox_loop;
  std::vector<std::unique_ptr<MbSide>> spliced;
  const Port mbox_port = mbox_loop.listen_stream(0, [&](Stream& down) {
    auto side = std::make_unique<MbSide>();
    Middlebox::Options mopts;
    mopts.name = "loopproxy.example";
    mopts.side = Middlebox::Side::kClientSide;
    mopts.private_key = mbox_id.key;
    mopts.certificate_chain = mbox_id.chain;
    side->mbox = std::make_unique<Middlebox>(std::move(mopts));
    Stream& up = mbox_loop.dial({0, server_port, "127.0.0.1"});
    side->binding = std::make_unique<MiddleboxBinding>(*side->mbox, down, up);
    spliced.push_back(std::move(side));
  });

  struct ClientSide {
    std::unique_ptr<ClientSession> session;
    std::unique_ptr<SocketBinding<ClientSession>> binding;
    Stream* stream = nullptr;
    bool sent = false;
  };
  EpollLoop client_loop;
  std::vector<std::unique_ptr<ClientSide>> clients;
  for (int i = 0; i < kSessions; ++i) {
    auto side = std::make_unique<ClientSide>();
    ClientSession::Options copts;
    copts.tls.trust_anchors = {test_ca().root()};
    copts.tls.server_name = "many.example";
    copts.tls.rng_seed = 2000 + i;
    side->session = std::make_unique<ClientSession>(std::move(copts));
    side->stream = &client_loop.dial({0, mbox_port, "127.0.0.1"});
    ClientSide* raw = side.get();
    side->stream->on_connect = [raw] { raw->session->start(); };
    side->binding = std::make_unique<SocketBinding<ClientSession>>(*side->session, *side->stream);
    on_data_then(*side->stream, [raw] {
      if (!raw->sent && raw->session->established()) {
        raw->sent = true;
        raw->session->send(to_bytes(std::string_view("hello world")));
        raw->binding->flush();
      }
    });
    on_close_then(*side->stream,
                  [&] { clients_done.fetch_add(1, std::memory_order_acq_rel); });
    clients.push_back(std::move(side));
  }

  std::thread ts([&] { drive(server_loop, stop); });
  std::thread tm([&] { drive(mbox_loop, stop); });
  std::thread tc([&] { drive(client_loop, stop); });
  bool finished = false;
  for (int waited = 0; waited < 60'000 && !finished; waited += 10) {
    finished = clients_done.load(std::memory_order_acquire) == kSessions;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true, std::memory_order_relaxed);
  tc.join();
  tm.join();
  ts.join();

  ASSERT_TRUE(finished) << clients_done.load() << "/" << kSessions << " sessions finished";
  ASSERT_EQ(accepted.size(), static_cast<std::size_t>(kSessions));
  ASSERT_EQ(spliced.size(), static_cast<std::size_t>(kSessions));
  for (const auto& side : accepted) {
    EXPECT_EQ(side->session->status(), SessionStatus::kClosed)
        << side->session->error_message();
    EXPECT_EQ(to_string(side->got), "hello world");
  }
  for (const auto& side : spliced) EXPECT_TRUE(side->mbox->joined());
  for (const auto& side : clients) {
    EXPECT_EQ(side->session->status(), SessionStatus::kClosed)
        << side->session->error_message();
  }
}

// ---------------------------------------------------------------------------
// Multi-loop suite: the same three-tier topology, but every tier is a
// LoopGroup — 4 loops × 3 tiers = 12 event-loop threads, SO_REUSEPORT
// sharding accepts across the middlebox and server loops, outbound dials
// posted to their assigned loops. The loop-affinity invariant (a session's
// fds, sessions, bindings, and DRBGs never migrate off the loop that
// created them) is what makes this safe with zero locks on the data path;
// the only shared state is the mutex-striped session cache, exercised from
// all server loops at once.

struct GroupServerSide {
  std::unique_ptr<ServerSession> session;
  std::unique_ptr<SocketBinding<ServerSession>> binding;
  Bytes got;
  bool responded = false;
};
struct GroupMbSide {
  std::unique_ptr<Middlebox> mbox;
  std::unique_ptr<MiddleboxBinding> binding;
};
struct GroupClientSide {
  std::unique_ptr<ClientSession> session;
  std::unique_ptr<SocketBinding<ClientSession>> binding;
  Stream* stream = nullptr;
  Bytes got;
  bool sent = false;
  bool closed_session = false;
};

/// The three-tier LoopGroup rig shared by the multi-loop tests. Wires
/// listeners on construction; the caller assigns clients, starts the
/// groups, and posts the dial storm.
struct GroupRig {
  static constexpr std::size_t kLoops = 4;

  explicit GroupRig(const tls::testing::ServerIdentity& server_id,
                    const tls::testing::ServerIdentity& mbox_id, const Bytes& request,
                    const Bytes& response)
      : server_group({kLoops, LoopGroup::DialPolicy::kRoundRobin}),
        mbox_group({kLoops, LoopGroup::DialPolicy::kRoundRobin}),
        client_group({kLoops, LoopGroup::DialPolicy::kRoundRobin}),
        server_sides(kLoops),
        mb_sides(kLoops),
        clients(kLoops) {
    server_port = server_group.listen(0, [&, this](std::size_t li, Stream& s) {
      auto side = std::make_unique<GroupServerSide>();
      ServerSession::Options sopts;
      sopts.tls.private_key = server_id.key;
      sopts.tls.certificate_chain = server_id.chain;
      sopts.tls.rng_seed = 4000 + li * 1000 + server_sides[li].size();
      sopts.tls.session_cache = &session_cache;  // shared, mutex-striped
      side->session = std::make_unique<ServerSession>(std::move(sopts));
      side->binding = std::make_unique<SocketBinding<ServerSession>>(*side->session, s);
      GroupServerSide* raw = side.get();
      const Bytes* want = &request;
      const Bytes* reply = &response;
      on_data_then(s, [raw, want, reply] {
        append(raw->got, raw->session->take_app_data());
        if (!raw->responded && raw->session->established() &&
            raw->got.size() >= want->size()) {
          raw->responded = true;
          raw->session->send(*reply);
          raw->binding->flush();
        }
      });
      server_sides[li].push_back(std::move(side));
    });

    mbox_port = mbox_group.listen(0, [&, this](std::size_t li, Stream& down) {
      auto side = std::make_unique<GroupMbSide>();
      Middlebox::Options mopts;
      mopts.name = "grouploop.proxy";
      mopts.side = Middlebox::Side::kClientSide;
      mopts.private_key = mbox_id.key;
      mopts.certificate_chain = mbox_id.chain;
      mopts.session_cache = &session_cache;
      side->mbox = std::make_unique<Middlebox>(std::move(mopts));
      // Upstream dial happens on this same loop: loop affinity from birth.
      Stream& up = mbox_group.loop(li).dial({0, server_port, "127.0.0.1"});
      side->binding = std::make_unique<MiddleboxBinding>(*side->mbox, down, up);
      mb_sides[li].push_back(std::move(side));
    });
  }

  ~GroupRig() { stop(); }

  void stop() {
    client_group.stop();
    mbox_group.stop();
    server_group.stop();
  }

  ShardedSessionCache session_cache;
  LoopGroup server_group, mbox_group, client_group;
  Port server_port = 0, mbox_port = 0;
  std::vector<std::vector<std::unique_ptr<GroupServerSide>>> server_sides;
  std::vector<std::vector<std::unique_ptr<GroupMbSide>>> mb_sides;
  std::vector<std::vector<std::unique_ptr<GroupClientSide>>> clients;
};

TEST(PosixLoopback, MultiLoopGroupShardsSessionsAcrossLoops) {
  constexpr int kSessions = 16;
  const auto server_id = make_identity("grouploop.example");
  const auto mbox_id = make_identity("grouploop.proxy");
  crypto::Drbg rng("grouploop-payload", 11);
  const Bytes request = rng.bytes(8 * 1024);
  const Bytes response = rng.bytes(4 * 1024);

  GroupRig rig(server_id, mbox_id, request, response);
  std::atomic<int> clients_done{0};

  // Assign sessions to client loops (round-robin) before any thread runs.
  for (int i = 0; i < kSessions; ++i) {
    auto side = std::make_unique<GroupClientSide>();
    ClientSession::Options copts;
    copts.tls.trust_anchors = {test_ca().root()};
    copts.tls.server_name = "grouploop.example";
    copts.tls.rng_seed = 5000 + i;
    side->session = std::make_unique<ClientSession>(std::move(copts));
    rig.clients[rig.client_group.pick_loop()].push_back(std::move(side));
  }

  rig.server_group.start();
  rig.mbox_group.start();
  rig.client_group.start();

  // Dial storm: each loop opens its own connections on its own thread.
  for (std::size_t li = 0; li < GroupRig::kLoops; ++li) {
    rig.client_group.post(li, [&, li] {
      for (auto& side : rig.clients[li]) {
        GroupClientSide* raw = side.get();
        raw->stream = &rig.client_group.loop(li).dial({0, rig.mbox_port, "127.0.0.1"});
        raw->stream->on_connect = [raw] { raw->session->start(); };
        raw->binding =
            std::make_unique<SocketBinding<ClientSession>>(*raw->session, *raw->stream);
        on_data_then(*raw->stream, [raw, &request, &response] {
          if (!raw->sent && raw->session->established()) {
            raw->sent = true;
            raw->session->send(request);
            raw->binding->flush();
          }
          append(raw->got, raw->session->take_app_data());
          if (!raw->closed_session && raw->got.size() >= response.size()) {
            raw->closed_session = true;
            raw->session->close();
            raw->binding->flush();
            raw->stream->close();
          }
        });
        on_close_then(*raw->stream,
                      [&clients_done] { clients_done.fetch_add(1, std::memory_order_acq_rel); });
      }
    });
  }

  bool finished = false;
  for (int waited = 0; waited < 60'000 && !finished; waited += 10) {
    finished = clients_done.load(std::memory_order_acquire) == kSessions;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  rig.stop();
  ASSERT_TRUE(finished) << clients_done.load() << "/" << kSessions << " sessions finished";

  // The kernel sharded the storm: every accept is accounted to exactly one
  // loop, the counters sum to the session count on both sharded tiers, and
  // the load did not collapse onto a single loop.
  const auto mbox_counts = rig.mbox_group.accept_counts();
  const auto server_counts = rig.server_group.accept_counts();
  std::uint64_t mbox_total = 0, server_total = 0;
  std::size_t mbox_loops_hit = 0;
  for (const auto c : mbox_counts) {
    mbox_total += c;
    if (c > 0) ++mbox_loops_hit;
  }
  for (const auto c : server_counts) server_total += c;
  EXPECT_EQ(mbox_total, static_cast<std::uint64_t>(kSessions));
  EXPECT_EQ(server_total, static_cast<std::uint64_t>(kSessions));
  EXPECT_GE(mbox_loops_hit, 2u) << "SO_REUSEPORT left every session on one loop";

  // Byte-identical transfers in both directions on every session, across
  // whatever loop each one landed on.
  std::size_t served = 0, mb_joined = 0;
  for (const auto& per_loop : rig.server_sides)
    for (const auto& side : per_loop) {
      ++served;
      EXPECT_EQ(side->got, request);
      EXPECT_EQ(side->session->status(), SessionStatus::kClosed)
          << side->session->error_message();
    }
  for (const auto& per_loop : rig.mb_sides)
    for (const auto& side : per_loop)
      if (side->mbox->joined()) ++mb_joined;
  EXPECT_EQ(served, static_cast<std::size_t>(kSessions));
  EXPECT_EQ(mb_joined, static_cast<std::size_t>(kSessions));
  for (const auto& per_loop : rig.clients)
    for (const auto& side : per_loop) {
      EXPECT_EQ(side->got, response);
      EXPECT_EQ(side->session->status(), SessionStatus::kClosed)
          << side->session->error_message();
    }
}

TEST(PosixLoopback, LoopGroupStopWithInFlightSessionsIsClean) {
  // stop() while handshakes and transfers are still in flight: the drain
  // budget gives loops a moment, then teardown must be orderly — threads
  // join, no callback fires into freed state (ASan/TSan cover the latter).
  constexpr int kSessions = 8;
  const auto server_id = make_identity("stoploop.example");
  const auto mbox_id = make_identity("grouploop.proxy");
  crypto::Drbg rng("stoploop-payload", 13);
  const Bytes request = rng.bytes(64 * 1024);
  const Bytes response = rng.bytes(64 * 1024);

  GroupRig rig(server_id, mbox_id, request, response);
  std::atomic<int> established{0};

  for (int i = 0; i < kSessions; ++i) {
    auto side = std::make_unique<GroupClientSide>();
    ClientSession::Options copts;
    copts.tls.trust_anchors = {test_ca().root()};
    copts.tls.server_name = "stoploop.example";
    copts.tls.rng_seed = 6000 + i;
    side->session = std::make_unique<ClientSession>(std::move(copts));
    rig.clients[rig.client_group.pick_loop()].push_back(std::move(side));
  }

  rig.server_group.start();
  rig.mbox_group.start();
  rig.client_group.start();
  for (std::size_t li = 0; li < GroupRig::kLoops; ++li) {
    rig.client_group.post(li, [&, li] {
      for (auto& side : rig.clients[li]) {
        GroupClientSide* raw = side.get();
        raw->stream = &rig.client_group.loop(li).dial({0, rig.mbox_port, "127.0.0.1"});
        raw->stream->on_connect = [raw] { raw->session->start(); };
        raw->binding =
            std::make_unique<SocketBinding<ClientSession>>(*raw->session, *raw->stream);
        on_data_then(*raw->stream, [raw, &request, &established] {
          if (!raw->sent && raw->session->established()) {
            raw->sent = true;
            established.fetch_add(1, std::memory_order_acq_rel);
            raw->session->send(request);  // big transfer we will interrupt
            raw->binding->flush();
          }
        });
      }
    });
  }

  // Wait only until the storm is mid-flight — some sessions established and
  // pushing data, others still handshaking — then pull the plug.
  for (int waited = 0; waited < 20'000; waited += 5) {
    if (established.load(std::memory_order_acquire) >= kSessions / 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(established.load(std::memory_order_acquire), 1);
  rig.client_group.stop(50 * kMillisecond);  // graceful: bounded drain
  rig.mbox_group.stop(50 * kMillisecond);
  rig.server_group.stop(50 * kMillisecond);
  EXPECT_FALSE(rig.client_group.running());
  EXPECT_FALSE(rig.mbox_group.running());
  EXPECT_FALSE(rig.server_group.running());
  // In-flight state is still inspectable after the orderly stop.
  std::size_t streams_seen = 0;
  for (const auto& per_loop : rig.clients)
    for (const auto& side : per_loop)
      if (side->stream) ++streams_seen;
  EXPECT_EQ(streams_seen, static_cast<std::size_t>(kSessions));
}

}  // namespace
}  // namespace mbtls::mb
