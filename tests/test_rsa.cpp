// RSA key generation, PKCS#1 v1.5 signatures and encryption.
// Key generation is slow-ish, so a process-wide cached key pair is shared
// across tests (mirroring how TLS tests share a CA).
#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "rsa/rsa.h"

namespace mbtls::rsa {
namespace {

const RsaKeyPair& test_key() {
  static const RsaKeyPair key = [] {
    crypto::Drbg rng("rsa-test-key", 0);
    return rsa_generate(1024, rng);
  }();
  return key;
}

TEST(Rsa, GeneratedKeyShape) {
  const auto& key = test_key();
  EXPECT_EQ(key.pub.n.bit_length(), 1024u);
  EXPECT_EQ(key.pub.e, bn::BigInt(65537));
  EXPECT_EQ(key.p * key.q, key.pub.n);
  EXPECT_GT(key.p, key.q);
}

TEST(Rsa, PrivateOpInvertsPublicOp) {
  const auto& key = test_key();
  const bn::BigInt m(123456789);
  const bn::BigInt c = m.mod_exp(key.pub.e, key.pub.n);
  EXPECT_EQ(key.private_op(c), m);
}

TEST(Rsa, SignVerifyRoundTrip) {
  const auto& key = test_key();
  const auto msg = to_bytes(std::string_view("certificate to be signed"));
  const Bytes sig = rsa_sign(key, crypto::HashAlgo::kSha256, msg);
  EXPECT_EQ(sig.size(), key.pub.modulus_bytes());
  EXPECT_TRUE(rsa_verify(key.pub, crypto::HashAlgo::kSha256, msg, sig));
}

TEST(Rsa, VerifyRejectsWrongMessage) {
  const auto& key = test_key();
  const Bytes sig = rsa_sign(key, crypto::HashAlgo::kSha256, to_bytes(std::string_view("a")));
  EXPECT_FALSE(rsa_verify(key.pub, crypto::HashAlgo::kSha256, to_bytes(std::string_view("b")), sig));
}

TEST(Rsa, VerifyRejectsTamperedSignature) {
  const auto& key = test_key();
  const auto msg = to_bytes(std::string_view("msg"));
  Bytes sig = rsa_sign(key, crypto::HashAlgo::kSha384, msg);
  sig[10] ^= 1;
  EXPECT_FALSE(rsa_verify(key.pub, crypto::HashAlgo::kSha384, msg, sig));
}

TEST(Rsa, VerifyRejectsWrongHashAlgo) {
  const auto& key = test_key();
  const auto msg = to_bytes(std::string_view("msg"));
  const Bytes sig = rsa_sign(key, crypto::HashAlgo::kSha256, msg);
  EXPECT_FALSE(rsa_verify(key.pub, crypto::HashAlgo::kSha384, msg, sig));
}

TEST(Rsa, VerifyRejectsWrongLength) {
  const auto& key = test_key();
  const auto msg = to_bytes(std::string_view("msg"));
  EXPECT_FALSE(rsa_verify(key.pub, crypto::HashAlgo::kSha256, msg, Bytes(17, 1)));
}

TEST(Rsa, EncryptDecryptRoundTrip) {
  crypto::Drbg rng("rsa-enc", 0);
  const auto& key = test_key();
  const Bytes pt = rng.bytes(48);
  const Bytes ct = rsa_encrypt(key.pub, pt, rng);
  EXPECT_EQ(ct.size(), key.pub.modulus_bytes());
  const auto back = rsa_decrypt(key, ct);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pt);
}

TEST(Rsa, DecryptRejectsTamperedCiphertext) {
  crypto::Drbg rng("rsa-enc-tamper", 0);
  const auto& key = test_key();
  Bytes ct = rsa_encrypt(key.pub, rng.bytes(16), rng);
  ct[0] ^= 1;
  // Either padding fails (nullopt) or the value exceeds n (nullopt); in the
  // rare case padding survives, the plaintext must differ.
  const auto back = rsa_decrypt(key, ct);
  if (back) {
    EXPECT_NE(*back, rng.bytes(16));
  }
}

TEST(Rsa, EncryptRejectsOversizedPlaintext) {
  crypto::Drbg rng("rsa-oversize", 0);
  const auto& key = test_key();
  EXPECT_THROW(rsa_encrypt(key.pub, Bytes(key.pub.modulus_bytes() - 10, 1), rng),
               std::length_error);
}

TEST(Rsa, DistinctEncryptionsDiffer) {
  crypto::Drbg rng("rsa-nondet", 0);
  const auto& key = test_key();
  const Bytes pt(16, 0x11);
  EXPECT_NE(rsa_encrypt(key.pub, pt, rng), rsa_encrypt(key.pub, pt, rng));
}

}  // namespace
}  // namespace mbtls::rsa
