// Million-user control plane (DESIGN.md "Control plane"): the sharded
// session cache, the deduplicating certificate pool, and the memoized
// attestation-quote verifier — unit semantics, engine integration, and a
// worker-pool hammer that drives every shard concurrently (the TSan stage
// of scripts/check.sh runs this file; the ASan stage exercises the
// wipe-on-evict path for use-after-free).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "mbtls/cache.h"
#include "mbtls/transport.h"
#include "net/simulator.h"
#include "sgx/attestation.h"
#include "tests/tls_test_util.h"
#include "tls/ticket.h"
#include "util/workpool.h"

namespace mbtls::mb {
namespace {

using tls::testing::make_identity;
using tls::testing::pump;
using tls::testing::test_ca;

tls::SessionState state_with_id(std::uint8_t tag) {
  tls::SessionState s;
  s.session_id = Bytes(32, tag);
  s.master_secret = Bytes(48, static_cast<std::uint8_t>(tag ^ 0xff));
  return s;
}

// ------------------------------------------------- ShardedSessionCache

TEST(ShardedSessionCache, StoreLookupByIdAndPeer) {
  ShardedSessionCache cache({.shards = 4, .capacity_per_shard = 8});
  EXPECT_EQ(cache.shard_count(), 4u);

  const auto s1 = state_with_id(1);
  cache.store_by_id(s1);
  cache.store_by_peer("origin-a.example", s1);

  const auto by_id = cache.lookup_by_id(s1.session_id);
  ASSERT_TRUE(by_id.has_value());
  EXPECT_EQ(by_id->master_secret, s1.master_secret);
  const auto by_peer = cache.lookup_by_peer("origin-a.example");
  ASSERT_TRUE(by_peer.has_value());
  EXPECT_EQ(by_peer->master_secret, s1.master_secret);

  EXPECT_FALSE(cache.lookup_by_id(Bytes(32, 99)).has_value());
  EXPECT_FALSE(cache.lookup_by_peer("unknown.example").has_value());
  EXPECT_EQ(cache.size(), 2u);  // one per index

  const auto st = cache.stats();
  EXPECT_EQ(st.stores, 2u);
  EXPECT_EQ(st.hits, 2u);
  EXPECT_EQ(st.misses, 2u);
  EXPECT_DOUBLE_EQ(st.hit_rate(), 0.5);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedSessionCache, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedSessionCache({.shards = 5}).shard_count(), 8u);
  EXPECT_EQ(ShardedSessionCache({.shards = 0}).shard_count(), 1u);
  EXPECT_EQ(ShardedSessionCache({.shards = 16}).shard_count(), 16u);
}

TEST(ShardedSessionCache, LruEvictionInSingleShard) {
  // One shard of capacity two makes LRU order observable.
  ShardedSessionCache cache({.shards = 1, .capacity_per_shard = 2});
  const auto a = state_with_id(1), b = state_with_id(2), c = state_with_id(3);
  cache.store_by_id(a);
  cache.store_by_id(b);
  // Touch a: it becomes most-recent, so inserting c evicts b.
  ASSERT_TRUE(cache.lookup_by_id(a.session_id).has_value());
  cache.store_by_id(c);
  EXPECT_TRUE(cache.lookup_by_id(a.session_id).has_value());
  EXPECT_FALSE(cache.lookup_by_id(b.session_id).has_value());
  EXPECT_TRUE(cache.lookup_by_id(c.session_id).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedSessionCache, OverwriteInPlaceDoesNotGrowOrEvict) {
  ShardedSessionCache cache({.shards = 1, .capacity_per_shard = 2});
  auto a = state_with_id(1);
  cache.store_by_id(a);
  a.master_secret = Bytes(48, 0xab);
  cache.store_by_id(a);  // same session ID: replace, not insert
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  const auto got = cache.lookup_by_id(a.session_id);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->master_secret, Bytes(48, 0xab));
}

TEST(ShardedSessionCache, EvictionChurnUnderTightCapacity) {
  // Push far more sessions than fit; every eviction runs the wiping
  // destructor path (the ASan job verifies no use-after-free in it) and
  // the cache never exceeds its configured bound.
  ShardedSessionCache cache({.shards = 2, .capacity_per_shard = 4});
  crypto::Drbg rng("evict-churn", 0);
  for (int i = 0; i < 256; ++i) {
    tls::SessionState s;
    s.session_id = rng.bytes(32);
    s.master_secret = rng.bytes(48);
    cache.store_by_id(s);
    EXPECT_LE(cache.size(), 2u * 4u);
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.stores, 256u);
  EXPECT_GE(st.evictions, 256u - 8u);
}

TEST(ShardedSessionCache, EngineResumesThroughPolymorphicCache) {
  // The engine consults Config::session_cache through the virtual
  // interface; a ShardedSessionCache drops in for the server side.
  const auto id = make_identity("ctrl.example");
  ShardedSessionCache server_cache({.shards = 8, .capacity_per_shard = 64});
  tls::SessionCache client_cache;

  auto connect = [&](std::uint64_t seed) {
    tls::Config ccfg;
    ccfg.is_client = true;
    ccfg.trust_anchors = {test_ca().root()};
    ccfg.server_name = "ctrl.example";
    ccfg.session_cache = &client_cache;
    ccfg.offer_resumption = true;
    ccfg.rng_seed = seed;
    tls::Config scfg;
    scfg.is_client = false;
    scfg.private_key = id.key;
    scfg.certificate_chain = id.chain;
    scfg.session_cache = &server_cache;
    scfg.rng_seed = seed + 1;
    tls::Engine client(ccfg);
    tls::Engine server(scfg);
    client.start();
    pump(client, server);
    EXPECT_TRUE(client.handshake_done()) << client.error_message();
    return client.handshake_done() && client.resumed();
  };

  EXPECT_FALSE(connect(1));
  EXPECT_GT(server_cache.size(), 0u);
  EXPECT_TRUE(connect(11));
  EXPECT_GE(server_cache.stats().hits, 1u);
}

// ---------------------------------------------------------------- CertPool

TEST(CertPool, InternDeduplicatesByDer) {
  CertPool pool(4);
  const auto id_a = make_identity("pool-a.example");
  const auto id_b = make_identity("pool-b.example");
  const Bytes der_a = to_bytes(id_a.chain[0].der());
  const Bytes der_b = to_bytes(id_b.chain[0].der());

  const auto first = pool.intern(der_a);
  const auto again = pool.intern(der_a);
  EXPECT_EQ(first.get(), again.get());  // the same parse, refcounted
  EXPECT_EQ(pool.size(), 1u);

  const auto other = pool.intern(der_b);
  EXPECT_NE(first.get(), other.get());
  EXPECT_EQ(pool.size(), 2u);

  const auto st = pool.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(first->info().subject_cn, "pool-a.example");
}

TEST(CertPool, PurgeUnusedDropsOnlyUnreferencedEntries) {
  CertPool pool(2);
  const auto id_a = make_identity("purge-a.example");
  const auto id_b = make_identity("purge-b.example");
  auto held = pool.intern(id_a.chain[0].der());
  pool.intern(id_b.chain[0].der());  // returned pointer dropped immediately
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.purge_unused(), 1u);  // only the unreferenced one dies
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(held->info().subject_cn, "purge-a.example");
  held.reset();
  EXPECT_EQ(pool.purge_unused(), 1u);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(CertPool, GarbageDerThrowsLikeParse) {
  CertPool pool(1);
  EXPECT_THROW(pool.intern(Bytes{0xde, 0xad, 0xbe, 0xef}), DecodeError);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(CertPool, EngineHandshakesShareOneParse) {
  // Two sequential full handshakes against the same origin: the second
  // server Certificate message hits the pool instead of re-parsing.
  const auto id = make_identity("share.example");
  CertPool pool(4);

  auto connect = [&](std::uint64_t seed) {
    tls::Config ccfg;
    ccfg.is_client = true;
    ccfg.trust_anchors = {test_ca().root()};
    ccfg.server_name = "share.example";
    ccfg.cert_pool = &pool;
    ccfg.rng_seed = seed;
    tls::Config scfg;
    scfg.is_client = false;
    scfg.private_key = id.key;
    scfg.certificate_chain = id.chain;
    scfg.rng_seed = seed + 1;
    tls::Engine client(ccfg);
    tls::Engine server(scfg);
    client.start();
    pump(client, server);
    ASSERT_TRUE(client.handshake_done()) << client.error_message();
  };

  connect(21);
  connect(31);
  EXPECT_EQ(pool.size(), 1u);  // one distinct certificate in the fleet
  const auto st = pool.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_GE(st.hits, 1u);
}

// ------------------------------------------------------- QuoteVerifyCache

TEST(QuoteVerifyCache, MemoizesBothVerdicts) {
  QuoteVerifyCache cache(4);
  const Bytes meas = crypto::Drbg("quote-meas", 1).bytes(32);
  const Bytes report(64, 0x42);
  const Bytes sig = sgx::attestation_service_sign(meas, report);

  EXPECT_TRUE(cache.verify(meas, report, sig));   // miss: real ECDSA verify
  EXPECT_TRUE(cache.verify(meas, report, sig));   // hit
  EXPECT_TRUE(cache.verify(meas, report, sig));   // hit
  Bytes bad_sig = sig;
  bad_sig[8] ^= 1;
  EXPECT_FALSE(cache.verify(meas, report, bad_sig));  // miss, cached false
  EXPECT_FALSE(cache.verify(meas, report, bad_sig));  // hit, still false
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(QuoteVerifyCache, DistinctReportDataAreDistinctEntries) {
  // The verdict depends on all three inputs: the same measurement with
  // different report data (e.g. a different channel binding) must not
  // share a cache entry.
  QuoteVerifyCache cache(2);
  const Bytes meas = crypto::Drbg("quote-meas2", 2).bytes(32);
  const Bytes r1(64, 1), r2(64, 2);
  EXPECT_TRUE(cache.verify(meas, r1, sgx::attestation_service_sign(meas, r1)));
  EXPECT_TRUE(cache.verify(meas, r2, sgx::attestation_service_sign(meas, r2)));
  // A signature over r1 presented with r2 is a replay and must fail even
  // though (meas, r1, sig) verified fine a moment ago.
  EXPECT_FALSE(cache.verify(meas, r2, sgx::attestation_service_sign(meas, r1)));
  EXPECT_EQ(cache.size(), 3u);
}

// ------------------------------------------------- worker-pool shard hammer

TEST(ControlPlaneConcurrency, WorkPoolHammersEveryShard) {
  // Every worker slams all three caches plus the rotating ticket keys at
  // once while the main thread rotates mid-flight — the TSan preset build
  // of this test is the data-race proof for the control plane's locking.
  ShardedSessionCache sessions({.shards = 8, .capacity_per_shard = 16});
  CertPool certs(8);
  QuoteVerifyCache quotes(8);
  tls::TicketKeyManager keys("hammer-keys", 0);

  // A small set of identities so workers collide on the same pool entries.
  std::vector<Bytes> ders;
  for (int i = 0; i < 4; ++i)
    ders.push_back(to_bytes(make_identity("hammer" + std::to_string(i) + ".example").chain[0].der()));
  const Bytes meas = crypto::Drbg("hammer-meas", 3).bytes(32);
  const Bytes report(64, 7);
  const Bytes sig = sgx::attestation_service_sign(meas, report);

  const std::size_t workers =
      std::max<std::size_t>(2, std::min<std::size_t>(4, std::thread::hardware_concurrency()));
  constexpr int kJobs = 512;
  std::atomic<int> ok{0};
  {
    util::WorkPool<int> pool(workers, 64, [&](std::size_t, int&& job) {
      crypto::Drbg rng("hammer-job", static_cast<std::uint64_t>(job));
      tls::SessionState s;
      s.session_id = rng.bytes(32);
      s.master_secret = rng.bytes(48);
      sessions.store_by_id(s);
      if (!sessions.lookup_by_id(s.session_id).has_value() &&
          sessions.stats().evictions == 0) {
        return;  // only eviction may lose a fresh store
      }
      const auto cert = certs.intern(ders[static_cast<std::size_t>(job) % ders.size()]);
      if (!cert) return;
      if (!quotes.verify(meas, report, sig)) return;
      // Rotations race against this seal/unseal pair: one rotation in
      // between is the stale-but-valid case; a reject means two rotations
      // landed inside the window, so reseal under the new current key.
      bool ticket_ok = false;
      for (int attempt = 0; attempt < 5 && !ticket_ok; ++attempt) {
        const Bytes ticket = keys.seal(s.master_secret);
        const auto opened = keys.unseal(ticket);
        ticket_ok = opened.has_value() && opened->plaintext == s.master_secret;
      }
      if (!ticket_ok) return;
      ok.fetch_add(1, std::memory_order_relaxed);
    });
    for (int j = 0; j < kJobs; ++j) {
      pool.post(static_cast<std::size_t>(j), j);
      if (j % 128 == 127) keys.rotate();  // rotation races against seal/unseal
    }
    pool.drain();
  }
  EXPECT_EQ(ok.load(), kJobs);
  EXPECT_EQ(certs.size(), ders.size());
  EXPECT_GE(certs.stats().hits, static_cast<std::uint64_t>(kJobs) - ders.size());
  EXPECT_EQ(quotes.size(), 1u);
  EXPECT_LE(sessions.size(), 8u * 16u);
}

// ---------------------------------------------------------------------------
// TicketRotator: scheduler-driven rotation (ROADMAP "rotation driven by the
// timer wheel"). Virtual time on the simulator makes the two-generation
// acceptance window exactly checkable without wall-clock sleeps; on the
// posix backend the same rotator arms timer-wheel slots instead.

TEST(TicketRotator, PeriodicRotationAdvancesGenerationsOnVirtualTime) {
  net::Simulator sim;
  tls::TicketKeyManager keys("rotator-test", 1);
  TicketRotator rotator(sim, keys, 10 * net::kSecond);
  const Bytes gen0_ticket = keys.seal(to_bytes(std::string_view("state-gen0")));

  sim.run_until(15 * net::kSecond);  // first timer fired at t=10s
  EXPECT_EQ(rotator.rotations(), 1u);
  EXPECT_EQ(keys.generation(), 1u);
  // One rotation old: still accepted, but flagged stale so the server
  // reissues under the current key.
  const auto stale = keys.unseal(gen0_ticket);
  ASSERT_TRUE(stale.has_value());
  EXPECT_TRUE(stale->stale);
  EXPECT_EQ(to_string(stale->plaintext), "state-gen0");

  sim.run_until(25 * net::kSecond);  // second timer fired at t=20s
  EXPECT_EQ(rotator.rotations(), 2u);
  EXPECT_EQ(keys.generation(), 2u);
  // Two rotations old: outside the acceptance window, clean reject.
  EXPECT_FALSE(keys.unseal(gen0_ticket).has_value());
}

TEST(TicketRotator, ZeroIntervalArmsNothing) {
  net::Simulator sim;
  tls::TicketKeyManager keys("rotator-test", 2);
  TicketRotator rotator(sim, keys, 0);
  EXPECT_EQ(sim.run(), net::RunStatus::kDrained);
  EXPECT_EQ(keys.generation(), 0u);
  EXPECT_EQ(rotator.rotations(), 0u);
}

TEST(TicketRotator, DestroyedRotatorLeavesArmedTimerInert) {
  net::Simulator sim;
  tls::TicketKeyManager keys("rotator-test", 3);
  { TicketRotator rotator(sim, keys, net::kSecond); }  // armed, then destroyed
  // The weak liveness token expired: the timer fires as a no-op and the
  // queue drains instead of rearming forever.
  EXPECT_EQ(sim.run(), net::RunStatus::kDrained);
  EXPECT_EQ(keys.generation(), 0u);
}

}  // namespace
}  // namespace mbtls::mb
