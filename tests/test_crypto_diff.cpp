// Differential tests: every optimized hot-path primitive against its
// reference implementation, over seeded-DRBG inputs plus hand-picked edge
// cases. The references (`*_reference`, also reachable tree-wide via
// -DMBTLS_REFERENCE_CRYPTO) are the straightforward textbook versions; any
// divergence here means the optimization changed semantics, not just speed.
#include <gtest/gtest.h>

#include "bignum/bignum.h"
#include "crypto/drbg.h"
#include "crypto/gcm.h"
#include "ec/p256.h"
#include "util/bytes.h"

namespace mbtls {
namespace {

// ---------------------------------------------------------------- P-256

ec::U256 u256_from_u64(std::uint64_t v) {
  Bytes be(32, 0);
  for (int i = 0; i < 8; ++i) be[31 - i] = static_cast<std::uint8_t>(v >> (8 * i));
  return ec::U256::from_bytes(be);
}

ec::U256 order_minus_one() {
  Bytes be = ec::P256::instance().order().to_bytes();
  // The order is odd, so decrementing cannot borrow past the last byte.
  be[31] -= 1;
  return ec::U256::from_bytes(be);
}

ec::U256 high_bit_scalar() {
  Bytes be(32, 0);
  be[0] = 0x80;
  return ec::U256::from_bytes(be);
}

ec::U256 all_ones_scalar() {
  return ec::U256::from_bytes(Bytes(32, 0xff));  // >= n: exercises robustness
}

/// Edge scalars every windowed path must agree on: zero (infinity), the
/// smallest scalars, the largest in-range scalar, a lone high bit (63 zero
/// windows), and an out-of-range value.
std::vector<ec::U256> edge_scalars() {
  return {u256_from_u64(0), u256_from_u64(1),  u256_from_u64(2),
          u256_from_u64(15), u256_from_u64(16), order_minus_one(),
          high_bit_scalar(), all_ones_scalar()};
}

void expect_same_point(const ec::AffinePoint& got, const ec::AffinePoint& want,
                       const std::string& what) {
  EXPECT_EQ(got.infinity, want.infinity) << what;
  if (got.infinity || want.infinity) return;
  EXPECT_EQ(got.x, want.x) << what;
  EXPECT_EQ(got.y, want.y) << what;
}

TEST(CryptoDiff, P256MulBaseMatchesReference) {
  const auto& curve = ec::P256::instance();
  crypto::Drbg rng("diff-p256-base", 1);
  std::vector<ec::U256> scalars = edge_scalars();
  for (int i = 0; i < 32; ++i) scalars.push_back(curve.random_scalar(rng));
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    expect_same_point(curve.mul_base(scalars[i]), curve.mul_base_reference(scalars[i]),
                      "mul_base scalar #" + std::to_string(i));
  }
}

TEST(CryptoDiff, P256MulMatchesReference) {
  const auto& curve = ec::P256::instance();
  crypto::Drbg rng("diff-p256-mul", 2);
  std::vector<ec::U256> scalars = edge_scalars();
  for (int i = 0; i < 16; ++i) scalars.push_back(curve.random_scalar(rng));
  // Vary the base point too: random multiples of G (all valid curve points).
  for (int pi = 0; pi < 4; ++pi) {
    const ec::AffinePoint q = curve.mul_base_reference(curve.random_scalar(rng));
    for (std::size_t i = 0; i < scalars.size(); ++i) {
      expect_same_point(curve.mul(scalars[i], q), curve.mul_reference(scalars[i], q),
                        "mul point #" + std::to_string(pi) + " scalar #" + std::to_string(i));
    }
  }
}

TEST(CryptoDiff, P256MulAddMatchesReference) {
  const auto& curve = ec::P256::instance();
  crypto::Drbg rng("diff-p256-muladd", 3);
  std::vector<ec::U256> scalars = edge_scalars();
  for (int i = 0; i < 4; ++i) scalars.push_back(curve.random_scalar(rng));
  const ec::AffinePoint q = curve.mul_base_reference(curve.random_scalar(rng));
  // Full cross product: hits u1 = 0, u2 = 0, both-zero, and cancellation-ish
  // combinations the ECDSA-verify hot path would only see adversarially.
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    for (std::size_t j = 0; j < scalars.size(); ++j) {
      expect_same_point(curve.mul_add(scalars[i], scalars[j], q),
                        curve.mul_add_reference(scalars[i], scalars[j], q),
                        "mul_add u1 #" + std::to_string(i) + " u2 #" + std::to_string(j));
    }
  }
}

TEST(CryptoDiff, P256WindowSelectMatchesIndexing) {
  // ct_select_window must agree with plain indexing for every index,
  // including the idx == 0 "no entry" convention.
  const auto& curve = ec::P256::instance();
  crypto::Drbg rng("diff-p256-sel", 4);
  std::vector<ec::AffinePoint> table;
  for (int i = 0; i < 15; ++i) table.push_back(curve.mul_base_reference(curve.random_scalar(rng)));
  const ec::AffinePoint zero = ct_select_window(table, 0);
  EXPECT_TRUE(zero.infinity);
  for (std::uint32_t idx = 1; idx <= table.size(); ++idx) {
    const ec::AffinePoint got = ct_select_window(table, idx);
    expect_same_point(got, table[idx - 1], "window idx " + std::to_string(idx));
  }
}

// --------------------------------------------------------------- AES-GCM

TEST(CryptoDiff, GcmSealMatchesReference) {
  crypto::Drbg rng("diff-gcm-seal", 5);
  for (const std::size_t key_len : {std::size_t{16}, std::size_t{32}}) {
    const crypto::AesGcm gcm(rng.bytes(key_len));
    // Sizes straddling every code-path boundary: empty, partial block, exact
    // blocks, the 4-block fast batch, and past it.
    for (const std::size_t size : {0, 1, 15, 16, 17, 63, 64, 65, 255, 256, 1500, 4096}) {
      const Bytes iv = rng.bytes(12);
      const Bytes aad = rng.bytes(size % 32);  // varying AAD lengths too
      const Bytes plaintext = rng.bytes(size);
      const Bytes fast = gcm.seal(iv, aad, plaintext);
      const Bytes ref = gcm.seal_reference(iv, aad, plaintext);
      EXPECT_EQ(fast, ref) << "seal key_len=" << key_len << " size=" << size;

      // Cross-open: each implementation must accept the other's output.
      const auto fast_opens_ref = gcm.open(iv, aad, ref);
      const auto ref_opens_fast = gcm.open_reference(iv, aad, fast);
      ASSERT_TRUE(fast_opens_ref.has_value());
      ASSERT_TRUE(ref_opens_fast.has_value());
      EXPECT_EQ(*fast_opens_ref, plaintext);
      EXPECT_EQ(*ref_opens_fast, plaintext);
    }
  }
}

TEST(CryptoDiff, GcmInPlaceMatchesAllocating) {
  crypto::Drbg rng("diff-gcm-inplace", 6);
  const crypto::AesGcm gcm(rng.bytes(32));
  for (const std::size_t size : {0, 1, 16, 65, 1500}) {
    const Bytes iv = rng.bytes(12);
    const Bytes aad = rng.bytes(13);
    const Bytes plaintext = rng.bytes(size);

    // seal_into with the plaintext already sitting in the output buffer
    // (true in-place use, as the record layer drives it).
    Bytes buf(size + crypto::AesGcm::kTagSize);
    std::copy(plaintext.begin(), plaintext.end(), buf.begin());
    gcm.seal_into(iv, aad, ByteView(buf).first(size), buf);
    EXPECT_EQ(buf, gcm.seal_reference(iv, aad, plaintext)) << "size=" << size;

    // open_into decrypting into the ciphertext's own storage.
    ASSERT_TRUE(gcm.open_into(iv, aad, buf, MutableByteView(buf).first(size)));
    EXPECT_TRUE(std::equal(plaintext.begin(), plaintext.end(), buf.begin())) << "size=" << size;
  }
}

TEST(CryptoDiff, GcmBothPathsRejectForgery) {
  crypto::Drbg rng("diff-gcm-forge", 7);
  const crypto::AesGcm gcm(rng.bytes(32));
  const Bytes iv = rng.bytes(12);
  const Bytes aad = rng.bytes(13);
  const Bytes plaintext = rng.bytes(100);
  Bytes sealed = gcm.seal(iv, aad, plaintext);
  for (const std::size_t flip : {std::size_t{0}, plaintext.size(), sealed.size() - 1}) {
    sealed[flip] ^= 0x01;
    Bytes scratch(plaintext.size());
    EXPECT_FALSE(gcm.open(iv, aad, sealed).has_value()) << "flip=" << flip;
    EXPECT_FALSE(gcm.open_reference(iv, aad, sealed).has_value()) << "flip=" << flip;
    EXPECT_FALSE(gcm.open_into(iv, aad, sealed, scratch)) << "flip=" << flip;
    sealed[flip] ^= 0x01;
  }
}

// --------------------------------------------------------------- mod_exp

bn::BigInt random_bigint(crypto::Drbg& rng, std::size_t bytes) {
  return bn::BigInt::from_bytes(rng.bytes(bytes));
}

TEST(CryptoDiff, ModExpMatchesReferenceOddModulus) {
  crypto::Drbg rng("diff-modexp-odd", 8);
  for (int trial = 0; trial < 8; ++trial) {
    Bytes mod_bytes = rng.bytes(64);
    mod_bytes[0] |= 0x80;
    mod_bytes[63] |= 1;  // odd: the Montgomery sliding-window path
    const bn::BigInt modulus = bn::BigInt::from_bytes(mod_bytes);
    const bn::BigInt base = random_bigint(rng, 64) % modulus;
    const bn::BigInt exponent = random_bigint(rng, 64);
    EXPECT_EQ(base.mod_exp(exponent, modulus), base.mod_exp_reference(exponent, modulus))
        << "trial " << trial;
  }
}

TEST(CryptoDiff, ModExpMatchesReferenceEvenModulus) {
  crypto::Drbg rng("diff-modexp-even", 9);
  for (int trial = 0; trial < 4; ++trial) {
    Bytes mod_bytes = rng.bytes(48);
    mod_bytes[0] |= 0x80;
    mod_bytes[47] &= 0xfe;  // even: the non-Montgomery fallback
    const bn::BigInt modulus = bn::BigInt::from_bytes(mod_bytes);
    const bn::BigInt base = random_bigint(rng, 48) % modulus;
    const bn::BigInt exponent = random_bigint(rng, 24);
    EXPECT_EQ(base.mod_exp(exponent, modulus), base.mod_exp_reference(exponent, modulus))
        << "trial " << trial;
  }
}

TEST(CryptoDiff, ModExpEdgeExponents) {
  crypto::Drbg rng("diff-modexp-edge", 10);
  Bytes mod_bytes = rng.bytes(64);
  mod_bytes[0] |= 0x80;
  mod_bytes[63] |= 1;
  const bn::BigInt modulus = bn::BigInt::from_bytes(mod_bytes);
  const bn::BigInt base = random_bigint(rng, 64) % modulus;
  // Exponents chosen for the sliding window's boundaries: 0, 1, a window of
  // all ones (31 = 0b11111), one bit beyond a window (32), a lone high bit,
  // and runs of zeros between set bits.
  std::vector<bn::BigInt> exponents = {bn::BigInt(0),  bn::BigInt(1),  bn::BigInt(2),
                                       bn::BigInt(31), bn::BigInt(32), bn::BigInt(33),
                                       bn::BigInt(0x80000000ull)};
  Bytes lone_high(64, 0);
  lone_high[0] = 0x80;
  exponents.push_back(bn::BigInt::from_bytes(lone_high));
  Bytes sparse(64, 0);
  sparse[0] = 0x81;
  sparse[63] = 0x01;
  exponents.push_back(bn::BigInt::from_bytes(sparse));
  for (std::size_t i = 0; i < exponents.size(); ++i) {
    EXPECT_EQ(base.mod_exp(exponents[i], modulus),
              base.mod_exp_reference(exponents[i], modulus))
        << "exponent #" << i;
  }
}

}  // namespace
}  // namespace mbtls
