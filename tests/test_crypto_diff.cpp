// Differential tests: every optimized hot-path primitive against its
// reference implementation, over seeded-DRBG inputs plus hand-picked edge
// cases. The references (`*_reference`, also reachable tree-wide via
// -DMBTLS_REFERENCE_CRYPTO) are the straightforward textbook versions; any
// divergence here means the optimization changed semantics, not just speed.
#include <gtest/gtest.h>

#include "bignum/bignum.h"
#include "crypto/backend.h"
#include "crypto/drbg.h"
#include "crypto/gcm.h"
#include "crypto/sha2.h"
#include "ec/p256.h"
#include "util/bytes.h"

namespace mbtls {
namespace {

// ---------------------------------------------------------------- P-256

ec::U256 u256_from_u64(std::uint64_t v) {
  Bytes be(32, 0);
  for (int i = 0; i < 8; ++i) be[31 - i] = static_cast<std::uint8_t>(v >> (8 * i));
  return ec::U256::from_bytes(be);
}

ec::U256 order_minus_one() {
  Bytes be = ec::P256::instance().order().to_bytes();
  // The order is odd, so decrementing cannot borrow past the last byte.
  be[31] -= 1;
  return ec::U256::from_bytes(be);
}

ec::U256 high_bit_scalar() {
  Bytes be(32, 0);
  be[0] = 0x80;
  return ec::U256::from_bytes(be);
}

ec::U256 all_ones_scalar() {
  return ec::U256::from_bytes(Bytes(32, 0xff));  // >= n: exercises robustness
}

/// Edge scalars every windowed path must agree on: zero (infinity), the
/// smallest scalars, the largest in-range scalar, a lone high bit (63 zero
/// windows), and an out-of-range value.
std::vector<ec::U256> edge_scalars() {
  return {u256_from_u64(0), u256_from_u64(1),  u256_from_u64(2),
          u256_from_u64(15), u256_from_u64(16), order_minus_one(),
          high_bit_scalar(), all_ones_scalar()};
}

void expect_same_point(const ec::AffinePoint& got, const ec::AffinePoint& want,
                       const std::string& what) {
  EXPECT_EQ(got.infinity, want.infinity) << what;
  if (got.infinity || want.infinity) return;
  EXPECT_EQ(got.x, want.x) << what;
  EXPECT_EQ(got.y, want.y) << what;
}

TEST(CryptoDiff, P256MulBaseMatchesReference) {
  const auto& curve = ec::P256::instance();
  crypto::Drbg rng("diff-p256-base", 1);
  std::vector<ec::U256> scalars = edge_scalars();
  for (int i = 0; i < 32; ++i) scalars.push_back(curve.random_scalar(rng));
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    expect_same_point(curve.mul_base(scalars[i]), curve.mul_base_reference(scalars[i]),
                      "mul_base scalar #" + std::to_string(i));
  }
}

TEST(CryptoDiff, P256MulMatchesReference) {
  const auto& curve = ec::P256::instance();
  crypto::Drbg rng("diff-p256-mul", 2);
  std::vector<ec::U256> scalars = edge_scalars();
  for (int i = 0; i < 16; ++i) scalars.push_back(curve.random_scalar(rng));
  // Vary the base point too: random multiples of G (all valid curve points).
  for (int pi = 0; pi < 4; ++pi) {
    const ec::AffinePoint q = curve.mul_base_reference(curve.random_scalar(rng));
    for (std::size_t i = 0; i < scalars.size(); ++i) {
      expect_same_point(curve.mul(scalars[i], q), curve.mul_reference(scalars[i], q),
                        "mul point #" + std::to_string(pi) + " scalar #" + std::to_string(i));
    }
  }
}

TEST(CryptoDiff, P256MulAddMatchesReference) {
  const auto& curve = ec::P256::instance();
  crypto::Drbg rng("diff-p256-muladd", 3);
  std::vector<ec::U256> scalars = edge_scalars();
  for (int i = 0; i < 4; ++i) scalars.push_back(curve.random_scalar(rng));
  const ec::AffinePoint q = curve.mul_base_reference(curve.random_scalar(rng));
  // Full cross product: hits u1 = 0, u2 = 0, both-zero, and cancellation-ish
  // combinations the ECDSA-verify hot path would only see adversarially.
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    for (std::size_t j = 0; j < scalars.size(); ++j) {
      expect_same_point(curve.mul_add(scalars[i], scalars[j], q),
                        curve.mul_add_reference(scalars[i], scalars[j], q),
                        "mul_add u1 #" + std::to_string(i) + " u2 #" + std::to_string(j));
    }
  }
}

TEST(CryptoDiff, P256WindowSelectMatchesIndexing) {
  // ct_select_window must agree with plain indexing for every index,
  // including the idx == 0 "no entry" convention.
  const auto& curve = ec::P256::instance();
  crypto::Drbg rng("diff-p256-sel", 4);
  std::vector<ec::AffinePoint> table;
  for (int i = 0; i < 15; ++i) table.push_back(curve.mul_base_reference(curve.random_scalar(rng)));
  const ec::AffinePoint zero = ct_select_window(table, 0);
  EXPECT_TRUE(zero.infinity);
  for (std::uint32_t idx = 1; idx <= table.size(); ++idx) {
    const ec::AffinePoint got = ct_select_window(table, idx);
    expect_same_point(got, table[idx - 1], "window idx " + std::to_string(idx));
  }
}

// --------------------------------------------------------------- AES-GCM

TEST(CryptoDiff, GcmSealMatchesReference) {
  crypto::Drbg rng("diff-gcm-seal", 5);
  for (const std::size_t key_len : {std::size_t{16}, std::size_t{32}}) {
    const crypto::AesGcm gcm(rng.bytes(key_len));
    // Sizes straddling every code-path boundary: empty, partial block, exact
    // blocks, the 4-block fast batch, and past it.
    for (const std::size_t size : {0, 1, 15, 16, 17, 63, 64, 65, 255, 256, 1500, 4096}) {
      const Bytes iv = rng.bytes(12);
      const Bytes aad = rng.bytes(size % 32);  // varying AAD lengths too
      const Bytes plaintext = rng.bytes(size);
      const Bytes fast = gcm.seal(iv, aad, plaintext);
      const Bytes ref = gcm.seal_reference(iv, aad, plaintext);
      EXPECT_EQ(fast, ref) << "seal key_len=" << key_len << " size=" << size;

      // Cross-open: each implementation must accept the other's output.
      const auto fast_opens_ref = gcm.open(iv, aad, ref);
      const auto ref_opens_fast = gcm.open_reference(iv, aad, fast);
      ASSERT_TRUE(fast_opens_ref.has_value());
      ASSERT_TRUE(ref_opens_fast.has_value());
      EXPECT_EQ(*fast_opens_ref, plaintext);
      EXPECT_EQ(*ref_opens_fast, plaintext);
    }
  }
}

TEST(CryptoDiff, GcmInPlaceMatchesAllocating) {
  crypto::Drbg rng("diff-gcm-inplace", 6);
  const crypto::AesGcm gcm(rng.bytes(32));
  for (const std::size_t size : {0, 1, 16, 65, 1500}) {
    const Bytes iv = rng.bytes(12);
    const Bytes aad = rng.bytes(13);
    const Bytes plaintext = rng.bytes(size);

    // seal_into with the plaintext already sitting in the output buffer
    // (true in-place use, as the record layer drives it).
    Bytes buf(size + crypto::AesGcm::kTagSize);
    std::copy(plaintext.begin(), plaintext.end(), buf.begin());
    gcm.seal_into(iv, aad, ByteView(buf).first(size), buf);
    EXPECT_EQ(buf, gcm.seal_reference(iv, aad, plaintext)) << "size=" << size;

    // open_into decrypting into the ciphertext's own storage.
    ASSERT_TRUE(gcm.open_into(iv, aad, buf, MutableByteView(buf).first(size)));
    EXPECT_TRUE(std::equal(plaintext.begin(), plaintext.end(), buf.begin())) << "size=" << size;
  }
}

TEST(CryptoDiff, GcmBothPathsRejectForgery) {
  crypto::Drbg rng("diff-gcm-forge", 7);
  const crypto::AesGcm gcm(rng.bytes(32));
  const Bytes iv = rng.bytes(12);
  const Bytes aad = rng.bytes(13);
  const Bytes plaintext = rng.bytes(100);
  Bytes sealed = gcm.seal(iv, aad, plaintext);
  for (const std::size_t flip : {std::size_t{0}, plaintext.size(), sealed.size() - 1}) {
    sealed[flip] ^= 0x01;
    Bytes scratch(plaintext.size());
    EXPECT_FALSE(gcm.open(iv, aad, sealed).has_value()) << "flip=" << flip;
    EXPECT_FALSE(gcm.open_reference(iv, aad, sealed).has_value()) << "flip=" << flip;
    EXPECT_FALSE(gcm.open_into(iv, aad, sealed, scratch)) << "flip=" << flip;
    sealed[flip] ^= 0x01;
  }
}

// ----------------------------------------------------- cross-backend GCM
//
// The runtime-dispatched backends (crypto/backend.h) must be byte-identical:
// scalar vs. AES-NI/PCLMUL vs. the bit-serial reference oracle. Backend
// choice is captured per object at construction, so each case constructs its
// AesGcm under the forced backend. On hardware without AES-NI,
// force_backend_for_testing clamps kAesni to kScalar and these cases
// degenerate to scalar-vs-scalar (still a valid oracle check); the
// accelerated arm is additionally exercised by the crypto_diff_force_aesni
// ctest registration on capable machines.

/// Forces a backend for the current scope, restoring the previous choice on
/// exit (restoration matters: gtest shards share the process).
class BackendGuard {
 public:
  explicit BackendGuard(crypto::Backend b) : saved_(crypto::active_backend()) {
    crypto::force_backend_for_testing(b);
  }
  ~BackendGuard() { crypto::force_backend_for_testing(saved_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  crypto::Backend saved_;
};

/// Seals with an AesGcm constructed under `backend`; returns ct || tag.
Bytes seal_with_backend(crypto::Backend backend, ByteView key, ByteView iv, ByteView aad,
                        ByteView plaintext) {
  BackendGuard guard(backend);
  const crypto::AesGcm gcm(key);
  return gcm.seal(iv, aad, plaintext);
}

TEST(CryptoDiff, GcmCrossBackendAllTailLengths) {
  crypto::Drbg rng("diff-gcm-backend-tail", 20);
  for (const std::size_t key_len : {std::size_t{16}, std::size_t{32}}) {
    const Bytes key = rng.bytes(key_len);
    // Every tail length 0..64 both on its own and appended to a full 8-block
    // (128-byte) batch, so the AES-NI CTR main loop, its 16-byte tail loop,
    // the partial-block path, and the 4-way aggregated GHASH all get hit.
    for (std::size_t tail = 0; tail <= 64; ++tail) {
      for (const std::size_t base : {std::size_t{0}, std::size_t{128}}) {
        const std::size_t size = base + tail;
        const Bytes iv = rng.bytes(12);
        const Bytes aad = rng.bytes(tail % 24);
        const Bytes plaintext = rng.bytes(size);
        const Bytes scalar = seal_with_backend(crypto::Backend::kScalar, key, iv, aad, plaintext);
        const Bytes accel = seal_with_backend(crypto::Backend::kAesni, key, iv, aad, plaintext);
        EXPECT_EQ(scalar, accel) << "key_len=" << key_len << " size=" << size;
        // Both must also match the bit-serial reference oracle.
        const crypto::AesGcm oracle(key);
        EXPECT_EQ(scalar, oracle.seal_reference(iv, aad, plaintext))
            << "key_len=" << key_len << " size=" << size;
      }
    }
  }
}

TEST(CryptoDiff, GcmCrossBackendEmptyAndAadOnly) {
  crypto::Drbg rng("diff-gcm-backend-aad", 21);
  const Bytes key = rng.bytes(32);
  const Bytes iv = rng.bytes(12);
  // Empty plaintext + empty AAD (tag-only output), and AAD-only inputs whose
  // lengths straddle the 64-byte aggregated GHASH batch.
  for (const std::size_t aad_len : {0, 1, 16, 63, 64, 65, 200}) {
    const Bytes aad = rng.bytes(aad_len);
    const Bytes scalar = seal_with_backend(crypto::Backend::kScalar, key, iv, aad, {});
    const Bytes accel = seal_with_backend(crypto::Backend::kAesni, key, iv, aad, {});
    EXPECT_EQ(scalar, accel) << "aad_len=" << aad_len;
    ASSERT_EQ(scalar.size(), crypto::AesGcm::kTagSize);

    // Cross-open: a backend must accept the other backend's sealed output.
    BackendGuard guard(crypto::Backend::kAesni);
    const crypto::AesGcm gcm(key);
    const auto opened = gcm.open(iv, aad, scalar);
    ASSERT_TRUE(opened.has_value()) << "aad_len=" << aad_len;
    EXPECT_TRUE(opened->empty());
  }
}

TEST(CryptoDiff, GcmCrossBackendInPlaceAliasing) {
  crypto::Drbg rng("diff-gcm-backend-alias", 22);
  const Bytes key = rng.bytes(16);
  for (const crypto::Backend backend : {crypto::Backend::kScalar, crypto::Backend::kAesni}) {
    BackendGuard guard(backend);
    const crypto::AesGcm gcm(key);
    for (const std::size_t size : {0, 1, 15, 16, 65, 128, 129, 1500}) {
      const Bytes iv = rng.bytes(12);
      const Bytes aad = rng.bytes(13);
      const Bytes plaintext = rng.bytes(size);

      // seal_into with the plaintext already in the output buffer.
      Bytes buf(size + crypto::AesGcm::kTagSize);
      std::copy(plaintext.begin(), plaintext.end(), buf.begin());
      gcm.seal_into(iv, aad, ByteView(buf).first(size), buf);
      EXPECT_EQ(buf, gcm.seal_reference(iv, aad, plaintext))
          << crypto::backend_name(backend) << " size=" << size;

      // open_into decrypting into the ciphertext's own storage.
      ASSERT_TRUE(gcm.open_into(iv, aad, buf, MutableByteView(buf).first(size)))
          << crypto::backend_name(backend) << " size=" << size;
      EXPECT_TRUE(std::equal(plaintext.begin(), plaintext.end(), buf.begin()))
          << crypto::backend_name(backend) << " size=" << size;
    }
  }
}

TEST(CryptoDiff, Sha256CrossBackend) {
  crypto::Drbg rng("diff-sha-backend", 23);
  // Lengths straddling the 64-byte block boundary and multi-block bulk runs
  // (the SHA-NI path compresses whole runs of blocks in one call).
  for (const std::size_t size : {0, 1, 55, 56, 63, 64, 65, 127, 128, 129, 1000}) {
    const Bytes data = rng.bytes(size);
    Bytes scalar_digest, accel_digest;
    {
      BackendGuard guard(crypto::Backend::kScalar);
      scalar_digest = crypto::Sha256::digest(data);
    }
    {
      BackendGuard guard(crypto::Backend::kAesni);
      accel_digest = crypto::Sha256::digest(data);
      // Also stream byte-at-a-time: every block goes through the staging
      // buffer instead of the bulk run.
      crypto::Sha256 streaming;
      for (const std::uint8_t b : data) streaming.update(ByteView(&b, 1));
      EXPECT_EQ(streaming.finish(), accel_digest) << "size=" << size;
    }
    EXPECT_EQ(scalar_digest, accel_digest) << "size=" << size;
  }
}

TEST(CryptoDiff, BackendReportingIsConsistent) {
  // backend_name round-trips, and the active name matches the active enum.
  EXPECT_STREQ(crypto::backend_name(crypto::Backend::kScalar), "scalar");
  EXPECT_STREQ(crypto::backend_name(crypto::Backend::kAesni), "aesni");
  EXPECT_STREQ(crypto::active_backend_name(), crypto::backend_name(crypto::active_backend()));
  // Forcing scalar always succeeds on every machine.
  BackendGuard guard(crypto::Backend::kScalar);
  EXPECT_EQ(crypto::active_backend(), crypto::Backend::kScalar);
  // An Aes built under forced scalar must report unaccelerated.
  const crypto::Aes aes(Bytes(16, 0x01));
  EXPECT_FALSE(aes.accelerated());
}

// --------------------------------------------------------------- mod_exp

bn::BigInt random_bigint(crypto::Drbg& rng, std::size_t bytes) {
  return bn::BigInt::from_bytes(rng.bytes(bytes));
}

TEST(CryptoDiff, ModExpMatchesReferenceOddModulus) {
  crypto::Drbg rng("diff-modexp-odd", 8);
  for (int trial = 0; trial < 8; ++trial) {
    Bytes mod_bytes = rng.bytes(64);
    mod_bytes[0] |= 0x80;
    mod_bytes[63] |= 1;  // odd: the Montgomery sliding-window path
    const bn::BigInt modulus = bn::BigInt::from_bytes(mod_bytes);
    const bn::BigInt base = random_bigint(rng, 64) % modulus;
    const bn::BigInt exponent = random_bigint(rng, 64);
    EXPECT_EQ(base.mod_exp(exponent, modulus), base.mod_exp_reference(exponent, modulus))
        << "trial " << trial;
  }
}

TEST(CryptoDiff, ModExpMatchesReferenceEvenModulus) {
  crypto::Drbg rng("diff-modexp-even", 9);
  for (int trial = 0; trial < 4; ++trial) {
    Bytes mod_bytes = rng.bytes(48);
    mod_bytes[0] |= 0x80;
    mod_bytes[47] &= 0xfe;  // even: the non-Montgomery fallback
    const bn::BigInt modulus = bn::BigInt::from_bytes(mod_bytes);
    const bn::BigInt base = random_bigint(rng, 48) % modulus;
    const bn::BigInt exponent = random_bigint(rng, 24);
    EXPECT_EQ(base.mod_exp(exponent, modulus), base.mod_exp_reference(exponent, modulus))
        << "trial " << trial;
  }
}

TEST(CryptoDiff, ModExpEdgeExponents) {
  crypto::Drbg rng("diff-modexp-edge", 10);
  Bytes mod_bytes = rng.bytes(64);
  mod_bytes[0] |= 0x80;
  mod_bytes[63] |= 1;
  const bn::BigInt modulus = bn::BigInt::from_bytes(mod_bytes);
  const bn::BigInt base = random_bigint(rng, 64) % modulus;
  // Exponents chosen for the sliding window's boundaries: 0, 1, a window of
  // all ones (31 = 0b11111), one bit beyond a window (32), a lone high bit,
  // and runs of zeros between set bits.
  std::vector<bn::BigInt> exponents = {bn::BigInt(0),  bn::BigInt(1),  bn::BigInt(2),
                                       bn::BigInt(31), bn::BigInt(32), bn::BigInt(33),
                                       bn::BigInt(0x80000000ull)};
  Bytes lone_high(64, 0);
  lone_high[0] = 0x80;
  exponents.push_back(bn::BigInt::from_bytes(lone_high));
  Bytes sparse(64, 0);
  sparse[0] = 0x81;
  sparse[63] = 0x01;
  exponents.push_back(bn::BigInt::from_bytes(sparse));
  for (std::size_t i = 0; i < exponents.size(); ++i) {
    EXPECT_EQ(base.mod_exp(exponents[i], modulus),
              base.mod_exp_reference(exponents[i], modulus))
        << "exponent #" << i;
  }
}

}  // namespace
}  // namespace mbtls
