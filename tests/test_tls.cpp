// TLS 1.2 engine: handshakes across all cipher suites, data transfer,
// certificate validation failures, alerts, resumption, and attestation.
#include <gtest/gtest.h>

#include "tests/tls_test_util.h"
#include "util/hex.h"

namespace mbtls::tls {
namespace {

using testing::make_identity;
using testing::pump;
using testing::test_ca;

Config client_config(const std::string& server_name, std::uint64_t seed = 1) {
  Config cfg;
  cfg.is_client = true;
  cfg.trust_anchors = {test_ca().root()};
  cfg.server_name = server_name;
  cfg.rng_label = "client";
  cfg.rng_seed = seed;
  return cfg;
}

Config server_config(const testing::ServerIdentity& id, std::uint64_t seed = 2) {
  Config cfg;
  cfg.is_client = false;
  cfg.private_key = id.key;
  cfg.certificate_chain = id.chain;
  cfg.rng_label = "server";
  cfg.rng_seed = seed;
  return cfg;
}

TEST(TlsHandshake, BasicEcdheEcdsa) {
  const auto id = make_identity("www.example.com");
  Engine client(client_config("www.example.com"));
  Engine server(server_config(id));
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  ASSERT_TRUE(server.handshake_done()) << server.error_message();
  EXPECT_EQ(client.suite().id, CipherSuite::kEcdheEcdsaAes256GcmSha384);
  EXPECT_EQ(client.master_secret(), server.master_secret());
  EXPECT_FALSE(client.resumed());
}

class TlsSuiteSweep : public ::testing::TestWithParam<CipherSuite> {};

TEST_P(TlsSuiteSweep, HandshakeAndEcho) {
  const CipherSuite suite = GetParam();
  const auto info = suite_info(suite);
  const auto id = make_identity(
      "suite.example", info->auth == AuthAlgo::kRsa ? x509::KeyType::kRsa
                                                    : x509::KeyType::kEcdsaP256);
  Config ccfg = client_config("suite.example");
  ccfg.cipher_suites = {suite};
  Config scfg = server_config(id);
  scfg.cipher_suites = {suite};
  Engine client(ccfg);
  Engine server(scfg);
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  ASSERT_TRUE(server.handshake_done()) << server.error_message();
  EXPECT_EQ(client.suite().id, suite);

  client.send(to_bytes(std::string_view("hello over TLS")));
  pump(client, server);
  EXPECT_EQ(mbtls::to_string(server.take_plaintext()), "hello over TLS");
  server.send(to_bytes(std::string_view("echo")));
  pump(client, server);
  EXPECT_EQ(mbtls::to_string(client.take_plaintext()), "echo");
}

INSTANTIATE_TEST_SUITE_P(
    AllSuites, TlsSuiteSweep,
    ::testing::Values(CipherSuite::kEcdheEcdsaAes256GcmSha384,
                      CipherSuite::kEcdheEcdsaAes128GcmSha256,
                      CipherSuite::kEcdheRsaAes256GcmSha384,
                      CipherSuite::kEcdheRsaAes128GcmSha256,
                      CipherSuite::kDheRsaAes256GcmSha384,
                      CipherSuite::kDheRsaAes128GcmSha256),
    [](const auto& info) {
      std::string name = suite_name(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(TlsHandshake, LargeDataTransfer) {
  const auto id = make_identity("bulk.example");
  Engine client(client_config("bulk.example"));
  Engine server(server_config(id));
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done());
  crypto::Drbg rng("bulk", 0);
  const Bytes blob = rng.bytes(100'000);
  client.send(blob);
  pump(client, server);
  EXPECT_EQ(server.take_plaintext(), blob);
}

TEST(TlsHandshake, ServerPreferenceSelectsSuite) {
  const auto id = make_identity("pref.example");
  Config ccfg = client_config("pref.example");
  ccfg.cipher_suites = {CipherSuite::kEcdheEcdsaAes128GcmSha256,
                        CipherSuite::kEcdheEcdsaAes256GcmSha384};
  Config scfg = server_config(id);
  scfg.cipher_suites = {CipherSuite::kEcdheEcdsaAes256GcmSha384,
                        CipherSuite::kEcdheEcdsaAes128GcmSha256};
  Engine client(ccfg);
  Engine server(scfg);
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done());
  EXPECT_EQ(client.suite().id, CipherSuite::kEcdheEcdsaAes256GcmSha384);
}

TEST(TlsHandshake, NoCommonSuiteFails) {
  const auto id = make_identity("fail.example");
  Config ccfg = client_config("fail.example");
  ccfg.cipher_suites = {CipherSuite::kEcdheEcdsaAes256GcmSha384};
  Config scfg = server_config(id);
  scfg.cipher_suites = {CipherSuite::kDheRsaAes256GcmSha384};
  Engine client(ccfg);
  Engine server(scfg);
  client.start();
  pump(client, server);
  EXPECT_TRUE(server.failed());
  EXPECT_EQ(server.last_alert(), AlertDescription::kHandshakeFailure);
  EXPECT_TRUE(client.failed());  // receives the fatal alert
}

TEST(TlsHandshake, UntrustedCaRejected) {
  crypto::Drbg other_rng("rogue-ca", 0);
  const auto rogue_ca =
      x509::CertificateAuthority::create("Rogue CA", x509::KeyType::kEcdsaP256, other_rng);
  testing::ServerIdentity id;
  id.key = std::make_shared<x509::PrivateKey>(
      x509::PrivateKey::generate(x509::KeyType::kEcdsaP256, other_rng));
  x509::CertRequest req;
  req.subject_cn = "victim.example";
  req.san_dns = {"victim.example"};
  req.not_after = 2524607999;
  req.key = id.key->public_key();
  id.chain = {rogue_ca.issue(req, other_rng)};

  Engine client(client_config("victim.example"));
  Engine server(server_config(id));
  client.start();
  pump(client, server);
  EXPECT_TRUE(client.failed());
  EXPECT_EQ(client.last_alert(), AlertDescription::kUnknownCa);
}

TEST(TlsHandshake, HostnameMismatchRejected) {
  const auto id = make_identity("real.example");
  Engine client(client_config("other.example"));
  Engine server(server_config(id));
  client.start();
  pump(client, server);
  EXPECT_TRUE(client.failed());
  EXPECT_EQ(client.last_alert(), AlertDescription::kBadCertificate);
}

TEST(TlsHandshake, ExpiredCertificateRejected) {
  testing::ServerIdentity id;
  id.key = std::make_shared<x509::PrivateKey>(
      x509::PrivateKey::generate(x509::KeyType::kEcdsaP256, testing::shared_rng()));
  x509::CertRequest req;
  req.subject_cn = "old.example";
  req.san_dns = {"old.example"};
  req.not_before = 0;
  req.not_after = 1000;  // expired long ago
  req.key = id.key->public_key();
  id.chain = {test_ca().issue(req, testing::shared_rng())};

  Engine client(client_config("old.example"));
  Engine server(server_config(id));
  client.start();
  pump(client, server);
  EXPECT_TRUE(client.failed());
  EXPECT_EQ(client.last_alert(), AlertDescription::kCertificateExpired);
}

TEST(TlsHandshake, DisabledVerificationAccepts) {
  // The "split TLS" baseline and the legacy-interop harness rely on being
  // able to opt out of verification.
  crypto::Drbg rng("selfsigned", 0);
  const auto self_ca =
      x509::CertificateAuthority::create("untrusted.example", x509::KeyType::kEcdsaP256, rng);
  testing::ServerIdentity id;
  id.key = std::make_shared<x509::PrivateKey>(self_ca.key());
  id.chain = {self_ca.root()};

  Config ccfg = client_config("untrusted.example");
  ccfg.verify_peer_certificate = false;
  Engine client(ccfg);
  Engine server(server_config(id));
  client.start();
  pump(client, server);
  EXPECT_TRUE(client.handshake_done()) << client.error_message();
}

TEST(TlsRecord, TamperedRecordTriggersBadMac) {
  const auto id = make_identity("tamper.example");
  Engine client(client_config("tamper.example"));
  Engine server(server_config(id));
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done());

  client.send(to_bytes(std::string_view("sensitive")));
  Bytes wire = client.take_output();
  wire[wire.size() - 1] ^= 0x01;  // flip a ciphertext byte
  server.feed(wire);
  EXPECT_TRUE(server.failed());
  EXPECT_EQ(server.last_alert(), AlertDescription::kBadRecordMac);
}

TEST(TlsRecord, ReplayedRecordRejected) {
  const auto id = make_identity("replay.example");
  Engine client(client_config("replay.example"));
  Engine server(server_config(id));
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done());

  client.send(to_bytes(std::string_view("pay $100")));
  const Bytes wire = client.take_output();
  server.feed(wire);
  EXPECT_EQ(mbtls::to_string(server.take_plaintext()), "pay $100");
  server.feed(wire);  // replay: sequence number mismatch -> MAC failure
  EXPECT_TRUE(server.failed());
  EXPECT_EQ(server.last_alert(), AlertDescription::kBadRecordMac);
}

TEST(TlsRecord, ReorderedRecordsRejected) {
  const auto id = make_identity("reorder.example");
  Engine client(client_config("reorder.example"));
  Engine server(server_config(id));
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done());

  client.send(to_bytes(std::string_view("first")));
  const Bytes rec1 = client.take_output();
  client.send(to_bytes(std::string_view("second")));
  const Bytes rec2 = client.take_output();
  server.feed(rec2);  // out of order
  EXPECT_TRUE(server.failed());
}

TEST(TlsHandshake, CloseNotify) {
  const auto id = make_identity("close.example");
  Engine client(client_config("close.example"));
  Engine server(server_config(id));
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done());
  client.close();
  pump(client, server);
  EXPECT_EQ(server.state(), EngineState::kClosed);
  EXPECT_EQ(client.state(), EngineState::kClosed);
}

TEST(TlsHandshake, UnknownRecordTypeBehaviour) {
  const auto id = make_identity("legacy.example");
  // Strict legacy server aborts.
  {
    Engine server(server_config(id));
    const Bytes bogus = frame_plaintext_record(static_cast<ContentType>(32), Bytes{});
    server.feed(bogus);
    EXPECT_TRUE(server.failed());
  }
  // Tolerant legacy server ignores and completes the handshake.
  {
    Config scfg = server_config(id);
    scfg.ignore_unknown_record_types = true;
    Engine server(scfg);
    Engine client(client_config("legacy.example"));
    const Bytes bogus = frame_plaintext_record(static_cast<ContentType>(32), Bytes{});
    server.feed(bogus);
    EXPECT_FALSE(server.failed());
    client.start();
    pump(client, server);
    EXPECT_TRUE(client.handshake_done());
  }
}

TEST(TlsResumption, AbbreviatedHandshake) {
  const auto id = make_identity("resume.example");
  SessionCache client_cache, server_cache;

  Config ccfg = client_config("resume.example");
  ccfg.session_cache = &client_cache;
  ccfg.offer_resumption = true;
  Config scfg = server_config(id);
  scfg.session_cache = &server_cache;

  // Full handshake populates both caches.
  {
    Engine client(ccfg);
    Engine server(scfg);
    client.start();
    pump(client, server);
    ASSERT_TRUE(client.handshake_done());
    ASSERT_FALSE(client.resumed());
  }
  // Second connection resumes.
  {
    ccfg.rng_seed = 11;
    scfg.rng_seed = 12;
    Engine client(ccfg);
    Engine server(scfg);
    client.start();
    pump(client, server);
    ASSERT_TRUE(client.handshake_done()) << client.error_message();
    ASSERT_TRUE(server.handshake_done()) << server.error_message();
    EXPECT_TRUE(client.resumed());
    EXPECT_TRUE(server.resumed());

    client.send(to_bytes(std::string_view("resumed data")));
    pump(client, server);
    EXPECT_EQ(mbtls::to_string(server.take_plaintext()), "resumed data");
  }
}

TEST(TlsResumption, UnknownIdFallsBackToFull) {
  const auto id = make_identity("fallback.example");
  SessionCache client_cache, server_cache;  // server cache empty
  // Seed the client cache with a bogus session.
  SessionState bogus;
  bogus.session_id = Bytes(32, 7);
  bogus.suite = CipherSuite::kEcdheEcdsaAes256GcmSha384;
  bogus.master_secret = Bytes(48, 9);
  client_cache.store_by_peer("fallback.example", bogus);

  Config ccfg = client_config("fallback.example");
  ccfg.session_cache = &client_cache;
  ccfg.offer_resumption = true;
  Config scfg = server_config(id);
  scfg.session_cache = &server_cache;
  Engine client(ccfg);
  Engine server(scfg);
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  EXPECT_FALSE(client.resumed());
}

TEST(TlsAttestation, ServerAttestsWhenRequested) {
  sgx::Platform platform;
  sgx::Enclave& enclave = platform.launch("tls-server-v1");
  const auto id = make_identity("enclave.example");

  Config ccfg = client_config("enclave.example");
  ccfg.request_attestation = true;
  ccfg.expected_measurement = sgx::measure("tls-server-v1");
  Config scfg = server_config(id);
  scfg.enclave = &enclave;

  Engine client(ccfg);
  Engine server(scfg);
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  EXPECT_TRUE(client.peer_attested());
  EXPECT_EQ(client.peer_measurement(), sgx::measure("tls-server-v1"));
}

TEST(TlsAttestation, MissingAttestationFailsWhenRequired) {
  const auto id = make_identity("noattest.example");
  Config ccfg = client_config("noattest.example");
  ccfg.request_attestation = true;
  Engine client(ccfg);
  Engine server(server_config(id));  // no enclave configured
  client.start();
  pump(client, server);
  EXPECT_TRUE(client.failed());
  EXPECT_EQ(client.last_alert(), AlertDescription::kHandshakeFailure);
}

TEST(TlsAttestation, WrongMeasurementRejected) {
  sgx::Platform platform;
  sgx::Enclave& enclave = platform.launch("evil-code-v9");
  const auto id = make_identity("wrongcode.example");
  Config ccfg = client_config("wrongcode.example");
  ccfg.request_attestation = true;
  ccfg.expected_measurement = sgx::measure("tls-server-v1");
  Config scfg = server_config(id);
  scfg.enclave = &enclave;
  Engine client(ccfg);
  Engine server(scfg);
  client.start();
  pump(client, server);
  EXPECT_TRUE(client.failed());
  EXPECT_EQ(client.last_alert(), AlertDescription::kBadCertificate);
}

TEST(TlsAttestation, SecretsLandInConfiguredStore) {
  sgx::Platform platform;
  sgx::Enclave& enclave = platform.launch("store-test");
  const auto id = make_identity("secrets.example");
  Config scfg = server_config(id);
  scfg.secret_store = &enclave.memory();
  scfg.secret_prefix = "tls/";
  Engine client(client_config("secrets.example"));
  Engine server(scfg);
  client.start();
  pump(client, server);
  ASSERT_TRUE(server.handshake_done());
  // Master secret was registered inside the enclave; adversary cannot see it.
  ASSERT_TRUE(enclave.memory().get("tls/master_secret").has_value());
  EXPECT_TRUE(platform.adversary_find_secret(server.master_secret()).empty());
}

TEST(TlsHandshake, GarbageInputFailsCleanly) {
  const auto id = make_identity("garbage.example");
  Engine server(server_config(id));
  crypto::Drbg rng("garbage", 0);
  Bytes junk = rng.bytes(100);
  junk[0] = 22;  // looks like a handshake record at first
  server.feed(junk);
  EXPECT_TRUE(server.failed() || !server.handshake_done());
}

TEST(TlsHandshake, TranscriptTamperBreaksFinished) {
  // A man-in-the-middle that alters a handshake message (without being able
  // to re-sign) must cause a Finished mismatch or signature failure.
  const auto id = make_identity("mitm.example");
  Engine client(client_config("mitm.example"));
  Engine server(server_config(id));
  client.start();
  Bytes hello = client.take_output();
  // Flip a byte in the client random (inside the ClientHello record).
  hello[12] ^= 0x01;
  server.feed(hello);
  const Bytes server_flight = server.take_output();
  client.feed(server_flight);
  pump(client, server);
  EXPECT_FALSE(client.handshake_done() && server.handshake_done());
}

}  // namespace
}  // namespace mbtls::tls
