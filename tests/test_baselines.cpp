// Split-TLS and naive key-share baselines.
#include <gtest/gtest.h>

#include "baselines/naive_shared_key.h"
#include "baselines/split_tls.h"
#include "tests/tls_test_util.h"

namespace mbtls::baselines {
namespace {

using tls::testing::make_identity;
using tls::testing::shared_rng;
using tls::testing::test_ca;

const x509::CertificateAuthority& corp_ca() {
  static const auto ca =
      x509::CertificateAuthority::create("Corp Root", x509::KeyType::kEcdsaP256, shared_rng());
  return ca;
}

struct SplitChain {
  tls::Engine* client;
  SplitTlsMiddlebox* mbox;
  tls::Engine* server;

  void pump(int iters = 50) {
    for (int i = 0; i < iters; ++i) {
      bool moved = false;
      Bytes a = client->take_output();
      if (!a.empty()) {
        moved = true;
        mbox->feed_from_client(a);
      }
      Bytes b = mbox->take_to_server();
      if (!b.empty()) {
        moved = true;
        server->feed(b);
      }
      Bytes c = server->take_output();
      if (!c.empty()) {
        moved = true;
        mbox->feed_from_server(c);
      }
      Bytes d = mbox->take_to_client();
      if (!d.empty()) {
        moved = true;
        client->feed(d);
      }
      if (!moved) break;
    }
  }
};

TEST(SplitTls, InterceptsWithFabricatedCertificate) {
  const auto id = make_identity("intercepted.example");
  tls::Config ccfg;
  ccfg.is_client = true;
  ccfg.trust_anchors = {corp_ca().root()};  // provisioned custom root
  ccfg.server_name = "intercepted.example";
  ccfg.rng_label = "split-c";
  tls::Engine client(ccfg);

  SplitTlsMiddlebox::Options mopts;
  mopts.ca = &corp_ca();
  mopts.upstream_trust_anchors = {test_ca().root()};
  SplitTlsMiddlebox mbox(std::move(mopts));

  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = id.key;
  scfg.certificate_chain = id.chain;
  scfg.rng_label = "split-s";
  tls::Engine server(scfg);

  SplitChain chain{&client, &mbox, &server};
  client.start();
  chain.pump();

  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  ASSERT_TRUE(server.handshake_done()) << server.error_message();
  EXPECT_TRUE(mbox.both_established());
  // The client accepted a FABRICATED certificate: issued by the corp CA,
  // not by the genuine web CA.
  ASSERT_TRUE(client.peer_certificate().has_value());
  EXPECT_EQ(client.peer_certificate()->info().issuer_cn, "Corp Root");
  EXPECT_EQ(client.peer_certificate()->info().subject_cn, "intercepted.example");

  // Data flows, and the middlebox sees ALL plaintext.
  client.send(to_bytes(std::string_view("user password")));
  chain.pump();
  EXPECT_EQ(mbtls::to_string(server.take_plaintext()), "user password");
  EXPECT_EQ(mbtls::to_string(mbox.observed_c2s()), "user password");
}

TEST(SplitTls, ClientWithoutCustomRootRejectsInterception) {
  const auto id = make_identity("protected.example");
  tls::Config ccfg;
  ccfg.is_client = true;
  ccfg.trust_anchors = {test_ca().root()};  // only the real web root
  ccfg.server_name = "protected.example";
  ccfg.rng_label = "split-reject-c";
  tls::Engine client(ccfg);

  SplitTlsMiddlebox::Options mopts;
  mopts.ca = &corp_ca();
  mopts.upstream_trust_anchors = {test_ca().root()};
  SplitTlsMiddlebox mbox(std::move(mopts));

  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = id.key;
  scfg.certificate_chain = id.chain;
  scfg.rng_label = "split-reject-s";
  tls::Engine server(scfg);

  SplitChain chain{&client, &mbox, &server};
  client.start();
  chain.pump();
  EXPECT_TRUE(client.failed());
  EXPECT_EQ(client.last_alert(), tls::AlertDescription::kUnknownCa);
}

TEST(SplitTls, ProcessorRunsOnPlaintext) {
  const auto id = make_identity("processed.example");
  tls::Config ccfg;
  ccfg.is_client = true;
  ccfg.trust_anchors = {corp_ca().root()};
  ccfg.server_name = "processed.example";
  ccfg.rng_label = "split-proc-c";
  tls::Engine client(ccfg);
  SplitTlsMiddlebox::Options mopts;
  mopts.ca = &corp_ca();
  mopts.upstream_trust_anchors = {test_ca().root()};
  mopts.processor = [](bool c2s, ByteView d) {
    Bytes out = to_bytes(d);
    if (c2s) append(out, to_bytes(std::string_view("!")));
    return out;
  };
  SplitTlsMiddlebox mbox(std::move(mopts));
  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = id.key;
  scfg.certificate_chain = id.chain;
  scfg.rng_label = "split-proc-s";
  tls::Engine server(scfg);
  SplitChain chain{&client, &mbox, &server};
  client.start();
  chain.pump();
  ASSERT_TRUE(mbox.both_established());
  client.send(to_bytes(std::string_view("hi")));
  chain.pump();
  EXPECT_EQ(mbtls::to_string(server.take_plaintext()), "hi!");
}

TEST(NaiveKeyShare, SessionKeyCodecRoundTrip) {
  tls::ConnectionKeys keys;
  keys.suite = tls::CipherSuite::kEcdheEcdsaAes256GcmSha384;
  crypto::Drbg rng("naive-codec", 0);
  keys.keys.client_write = {rng.bytes(32), rng.bytes(4)};
  keys.keys.server_write = {rng.bytes(32), rng.bytes(4)};
  keys.client_seq = 5;
  keys.server_seq = 9;
  const auto back = decode_session_keys(encode_session_keys(keys));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->suite, keys.suite);
  EXPECT_EQ(back->keys.client_write.key, keys.keys.client_write.key);
  EXPECT_EQ(back->client_seq, 5u);
  EXPECT_EQ(back->server_seq, 9u);
  EXPECT_FALSE(decode_session_keys(Bytes(5, 0)).has_value());
}

TEST(NaiveKeyShare, MiddleboxReceivesKeysAndProcessesData) {
  const auto server_id = make_identity("naive-origin.example");
  const auto mbox_id = make_identity("naive-proxy.example");

  NaiveKeyShareClient::Options copts;
  copts.tls.trust_anchors = {test_ca().root()};
  copts.tls.server_name = "naive-origin.example";
  copts.tls.rng_label = "naive-c";
  copts.control_tls.trust_anchors = {test_ca().root()};
  copts.control_tls.server_name = "naive-proxy.example";
  copts.control_tls.rng_label = "naive-ctl";
  NaiveKeyShareClient client(std::move(copts));

  NaiveKeyShareMiddlebox::Options mopts;
  mopts.private_key = mbox_id.key;
  mopts.certificate_chain = mbox_id.chain;
  mopts.processor = [](bool c2s, ByteView d) {
    Bytes out = to_bytes(d);
    if (c2s) append(out, to_bytes(std::string_view(" [seen]")));
    return out;
  };
  NaiveKeyShareMiddlebox mbox(std::move(mopts));

  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = server_id.key;
  scfg.certificate_chain = server_id.chain;
  scfg.rng_label = "naive-s";
  tls::Engine server(scfg);

  client.start();
  for (int i = 0; i < 60; ++i) {
    bool moved = false;
    Bytes a = client.take_output();
    if (!a.empty()) {
      moved = true;
      mbox.feed_from_client(a);
    }
    Bytes ctl = client.take_control_output();
    if (!ctl.empty()) {
      moved = true;
      mbox.feed_control(ctl);
    }
    Bytes ctl2 = mbox.take_control_output();
    if (!ctl2.empty()) {
      moved = true;
      client.feed_control(ctl2);
    }
    Bytes b = mbox.take_to_server();
    if (!b.empty()) {
      moved = true;
      server.feed(b);
    }
    Bytes c = server.take_output();
    if (!c.empty()) {
      moved = true;
      mbox.feed_from_server(c);
    }
    Bytes d = mbox.take_to_client();
    if (!d.empty()) {
      moved = true;
      client.feed(d);
    }
    if (!moved) break;
  }
  ASSERT_TRUE(client.primary().handshake_done());
  ASSERT_TRUE(client.ready());
  ASSERT_TRUE(mbox.has_keys());

  client.primary().send(to_bytes(std::string_view("data")));
  for (int i = 0; i < 10; ++i) {
    Bytes a = client.take_output();
    if (!a.empty()) mbox.feed_from_client(a);
    Bytes b = mbox.take_to_server();
    if (!b.empty()) server.feed(b);
  }
  EXPECT_EQ(mbtls::to_string(server.take_plaintext()), "data [seen]");
}

}  // namespace
}  // namespace mbtls::baselines
