// Statistical (dudect-style) timing tests for the constant-time primitives:
// constant_time_equal() and AES-GCM tag verification must not leak *where*
// two buffers differ through their running time.
//
// Method: both input classes share one probe buffer — the differing byte is
// XOR-flipped in place outside the timed region, so the classes differ only
// in data, never in allocation or alignment. Samples are interleaved A/B,
// the slowest tail is dropped (scheduler noise is one-sided), and Welch's
// t-statistic decides: |t| below the threshold means the classes are
// statistically indistinguishable at this sample size. As a positive
// control, the variable-time equal() must show a very large |t| for the same
// classes — proving the harness can actually detect an early-exit leak.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <vector>

#include "crypto/drbg.h"
#include "crypto/gcm.h"
#include "ec/p256.h"
#include "util/bytes.h"
#include "util/ct.h"

namespace mbtls {
namespace {

using Clock = std::chrono::steady_clock;

// A sampler prepares its input class, runs the operation `batch` times, and
// returns the elapsed nanoseconds for the batch.
using Sampler = std::function<double()>;

// Sentinel for "no fault injected" (the equal-inputs class).
constexpr std::size_t kNoFlip = static_cast<std::size_t>(-1);

double time_batch(const std::function<void()>& op, int batch) {
  const auto t0 = Clock::now();
  for (int i = 0; i < batch; ++i) op();
  const auto t1 = Clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

/// Interleaved A/B measurement -> Welch's t-statistic on trimmed samples.
double welch_t(const Sampler& sample_a, const Sampler& sample_b, int samples,
               double keep_fraction = 0.8) {
  std::vector<double> a, b;
  a.reserve(static_cast<std::size_t>(samples));
  b.reserve(static_cast<std::size_t>(samples));
  // Warm caches and branch predictors before measuring.
  sample_a();
  sample_b();
  for (int i = 0; i < samples; ++i) {
    a.push_back(sample_a());
    b.push_back(sample_b());
  }
  auto trim = [&](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    v.resize(static_cast<std::size_t>(static_cast<double>(v.size()) * keep_fraction));
  };
  trim(a);
  trim(b);
  auto mean_var = [](const std::vector<double>& v) {
    double mean = 0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    double var = 0;
    for (double x : v) var += (x - mean) * (x - mean);
    var /= static_cast<double>(v.size() - 1);
    return std::pair<double, double>(mean, var);
  };
  const auto [ma, va] = mean_var(a);
  const auto [mb, vb] = mean_var(b);
  const double denom =
      std::sqrt(va / static_cast<double>(a.size()) + vb / static_cast<double>(b.size()));
  if (denom == 0) return 0;
  return (ma - mb) / denom;
}

/// Builds a sampler for comparing `base` against the shared `probe` buffer
/// with a fault injected at `flip_pos` (or no fault when flip_pos is npos).
/// The flip is undone after timing, so both classes reuse identical memory.
template <typename Compare>
Sampler flip_sampler(const Bytes& base, Bytes& probe, std::size_t flip_pos,
                     Compare compare, volatile bool& sink, int batch) {
  return [&base, &probe, flip_pos, compare, &sink, batch] {
    if (flip_pos != kNoFlip) probe.at(flip_pos) ^= 0x5a;
    const double ns = time_batch([&] { sink = compare(base, probe); }, batch);
    if (flip_pos != kNoFlip) probe.at(flip_pos) ^= 0x5a;
    return ns;
  };
}

// dudect uses |t| > 4.5 as "leak detected"; we leave margin for shared-CI
// noise. The positive control below shows a real leak lands far above this.
constexpr double kLeakThreshold = 20.0;

// Sanitizer instrumentation adds data-dependent overhead (shadow-memory
// checks, interceptors), so timing comparisons under it measure the
// instrumentation, not the code. MBTLS_SANITIZER_BUILD comes from CMake.
#if defined(MBTLS_SANITIZER_BUILD)
#define MBTLS_SKIP_IF_INSTRUMENTED() \
  GTEST_SKIP() << "timing statistics are not meaningful under sanitizers"
#else
#define MBTLS_SKIP_IF_INSTRUMENTED() (void)0
#endif

TEST(ConstTime, EqualDoesNotLeakMismatchPosition) {
  MBTLS_SKIP_IF_INSTRUMENTED();
  crypto::Drbg rng("consttime-eq", 1);
  const Bytes base = rng.bytes(4096);
  Bytes probe = base;

  const auto ct = [](const Bytes& x, const Bytes& y) { return constant_time_equal(x, y); };
  volatile bool sink = false;
  const double t = welch_t(flip_sampler(base, probe, 0, ct, sink, 8),
                           flip_sampler(base, probe, base.size() - 1, ct, sink, 8),
                           /*samples=*/1500);
  (void)sink;
  EXPECT_LT(std::fabs(t), kLeakThreshold)
      << "constant_time_equal timing depends on mismatch position, t=" << t;
}

TEST(ConstTime, EqualDoesNotLeakMatchVsMismatch) {
  MBTLS_SKIP_IF_INSTRUMENTED();
  crypto::Drbg rng("consttime-eq2", 2);
  const Bytes base = rng.bytes(4096);
  Bytes probe = base;

  const auto ct = [](const Bytes& x, const Bytes& y) { return constant_time_equal(x, y); };
  volatile bool sink = false;
  const double t = welch_t(flip_sampler(base, probe, kNoFlip, ct, sink, 8),
                           flip_sampler(base, probe, 0, ct, sink, 8),
                           /*samples=*/1500);
  (void)sink;
  EXPECT_LT(std::fabs(t), kLeakThreshold)
      << "constant_time_equal timing distinguishes equal from unequal, t=" << t;
}

TEST(ConstTime, PositiveControlVariableTimeEqualLeaks) {
  MBTLS_SKIP_IF_INSTRUMENTED();
  // Proves the harness detects leaks: the early-exit equal() must show a
  // massive timing difference between first-byte and last-byte mismatches.
  crypto::Drbg rng("consttime-ctrl", 3);
  const Bytes base = rng.bytes(4096);
  Bytes probe = base;

  const auto vt = [](const Bytes& x, const Bytes& y) { return equal(x, y); };
  volatile bool sink = false;
  const double t = welch_t(flip_sampler(base, probe, 0, vt, sink, 8),
                           flip_sampler(base, probe, base.size() - 1, vt, sink, 8),
                           /*samples=*/1500);
  (void)sink;
  EXPECT_GT(std::fabs(t), kLeakThreshold)
      << "harness failed to detect a deliberate early-exit leak, t=" << t;
}

// Deliberately variable-time window lookup: scans (and copies) entries until
// it reaches the requested one, so its running time is proportional to the
// index — the classic secret-indexed table leak ct_select_window exists to
// prevent. A plain `return table[idx - 1]` would NOT serve as a positive
// control here: with a 15-entry L1-resident table the indexed load itself is
// timing-flat, so the harness would have nothing to detect.
ec::AffinePoint vt_select_window(std::span<const ec::AffinePoint> table, std::uint32_t idx) {
  ec::AffinePoint out;
  out.infinity = true;
  for (std::uint32_t i = 0; i < table.size(); ++i) {
    out = table[i];
    if (i + 1 == idx) break;  // early exit: work done depends on idx
  }
  if (idx == 0) out.infinity = true;
  return out;
}

/// Sampler timing `batch` window selections at a fixed index. The table is
/// shared between both classes (it is public precomputation either way); only
/// the index — the secret in the real scalar-multiplication loop — differs.
template <typename Select>
Sampler select_sampler(std::span<const ec::AffinePoint> table, std::uint32_t idx,
                       Select select, volatile std::uint64_t& sink, int batch) {
  return [table, idx, select, &sink, batch] {
    return time_batch([&] { sink = sink + select(table, idx).x.w[0]; }, batch);
  };
}

TEST(ConstTime, WindowSelectDoesNotLeakIndex) {
  MBTLS_SKIP_IF_INSTRUMENTED();
  // The fixed-window P-256 ladder selects one of 15 precomputed points per
  // 4-bit window of the secret scalar. The selection must cost the same for
  // the first and the last index, or the scalar leaks window by window.
  crypto::Drbg rng("consttime-sel", 5);
  const auto& curve = ec::P256::instance();
  std::vector<ec::AffinePoint> table;
  for (int i = 0; i < 15; ++i) table.push_back(curve.mul_base(curve.random_scalar(rng)));

  volatile std::uint64_t sink = 0;
  const auto ct = [](std::span<const ec::AffinePoint> t, std::uint32_t idx) {
    return ec::ct_select_window(t, idx);
  };
  const double t = welch_t(select_sampler(table, 1, ct, sink, 64),
                           select_sampler(table, 15, ct, sink, 64),
                           /*samples=*/1500);
  (void)sink;
  EXPECT_LT(std::fabs(t), kLeakThreshold)
      << "ct_select_window timing depends on the selected index, t=" << t;
}

TEST(ConstTime, PositiveControlVariableTimeWindowSelectLeaks) {
  MBTLS_SKIP_IF_INSTRUMENTED();
  // Same harness, same classes, early-exit lookup: must show a massive |t|,
  // proving the negative result above is the code's property, not the
  // harness's insensitivity.
  crypto::Drbg rng("consttime-sel-ctrl", 6);
  const auto& curve = ec::P256::instance();
  std::vector<ec::AffinePoint> table;
  for (int i = 0; i < 15; ++i) table.push_back(curve.mul_base(curve.random_scalar(rng)));

  volatile std::uint64_t sink = 0;
  const double t = welch_t(select_sampler(table, 1, vt_select_window, sink, 64),
                           select_sampler(table, 15, vt_select_window, sink, 64),
                           /*samples=*/1500);
  (void)sink;
  EXPECT_GT(std::fabs(t), kLeakThreshold)
      << "harness failed to detect the early-exit window lookup, t=" << t;
}

TEST(ConstTime, GcmTagVerifyDoesNotLeakMismatchPosition) {
  MBTLS_SKIP_IF_INSTRUMENTED();
  crypto::Drbg rng("consttime-gcm", 4);
  const Bytes key = rng.bytes(32);
  const Bytes iv = rng.bytes(12);
  const Bytes aad = rng.bytes(13);
  const Bytes plaintext = rng.bytes(1024);
  const crypto::AesGcm gcm(key);
  const Bytes sealed = gcm.seal(iv, aad, plaintext);
  ASSERT_GE(sealed.size(), 16u);

  // Corrupt the first vs the last byte of the 16-byte trailing tag in a
  // single shared buffer; both classes must fail after identical work (full
  // GHASH + constant-time compare).
  Bytes probe = sealed;
  const auto open_fails = [&](std::size_t flip_pos, int batch) -> Sampler {
    return [&gcm, &iv, &aad, &probe, flip_pos, batch] {
      probe.at(flip_pos) ^= 0x5a;
      volatile bool sink = false;
      const double ns = time_batch(
          [&] { sink = gcm.open(iv, aad, probe).has_value(); }, batch);
      (void)sink;
      probe.at(flip_pos) ^= 0x5a;
      return ns;
    };
  };
  {
    probe.at(sealed.size() - 16) ^= 0x5a;
    ASSERT_FALSE(gcm.open(iv, aad, probe).has_value());
    probe.at(sealed.size() - 16) ^= 0x5a;
  }

  const double t = welch_t(open_fails(sealed.size() - 16, 4),
                           open_fails(sealed.size() - 1, 4),
                           /*samples=*/1000);
  EXPECT_LT(std::fabs(t), kLeakThreshold)
      << "GCM tag verification timing depends on tag mismatch position, t=" << t;
}

}  // namespace
}  // namespace mbtls
