// HTTP/1.1 model, parsers, and serializers.
#include <gtest/gtest.h>

#include "http/http.h"

namespace mbtls::http {
namespace {

TEST(Http, RequestSerializeParseRoundTrip) {
  Request req;
  req.method = "POST";
  req.target = "/api/v1/items";
  req.headers.set("Host", "origin.example");
  req.headers.set("X-Custom", "abc");
  req.body = to_bytes(std::string_view("{\"k\":1}"));
  const Bytes wire = req.serialize();
  const auto parsed = parse_request(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->target, "/api/v1/items");
  EXPECT_EQ(parsed->headers.get("host"), "origin.example");  // case-insensitive
  EXPECT_EQ(parsed->body, req.body);
}

TEST(Http, ResponseSerializeParseRoundTrip) {
  Response resp;
  resp.status = 404;
  resp.reason = "Not Found";
  resp.headers.set("Content-Type", "text/plain");
  resp.body = to_bytes(std::string_view("missing"));
  const auto parsed = parse_response(resp.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 404);
  EXPECT_EQ(parsed->reason, "Not Found");
  EXPECT_EQ(to_string(parsed->body), "missing");
}

TEST(Http, ContentLengthAutoAdded) {
  Request req;
  req.body = Bytes(42, 'x');
  const auto parsed = parse_request(req.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->headers.get("Content-Length"), "42");
}

TEST(Http, IncrementalParsingAcrossChunks) {
  Request req;
  req.target = "/split";
  req.body = to_bytes(std::string_view("0123456789"));
  const Bytes wire = req.serialize();

  RequestParser parser;
  for (std::size_t split = 1; split < wire.size(); split += 7) {
    // Feed in two pieces; exactly one message should emerge, after piece 2.
    RequestParser p2;
    EXPECT_TRUE(p2.feed(ByteView(wire).first(split)).empty());
    const auto msgs = p2.feed(ByteView(wire).subspan(split));
    ASSERT_EQ(msgs.size(), 1u) << "split " << split;
    EXPECT_EQ(msgs[0].target, "/split");
    EXPECT_EQ(to_string(msgs[0].body), "0123456789");
  }
}

TEST(Http, MultipleMessagesInOneFeed) {
  Request a, b;
  a.target = "/one";
  b.target = "/two";
  Bytes wire = a.serialize();
  append(wire, b.serialize());
  RequestParser parser;
  const auto msgs = parser.feed(wire);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].target, "/one");
  EXPECT_EQ(msgs[1].target, "/two");
}

TEST(Http, HeadersReplaceVsAdd) {
  Headers h;
  h.set("Via", "a");
  h.set("Via", "b");  // replaces
  EXPECT_EQ(h.get("via"), "b");
  h.add("Via", "c");  // appends
  EXPECT_EQ(h.entries().size(), 2u);
  h.remove("VIA");
  EXPECT_FALSE(h.contains("Via"));
}

TEST(Http, ParseIncompleteReturnsNothing) {
  EXPECT_FALSE(parse_request(to_bytes(std::string_view("GET / HTTP/1.1\r\nHost: x"))).has_value());
  // Header block complete but body missing.
  EXPECT_FALSE(parse_request(to_bytes(std::string_view(
                                 "GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab")))
                   .has_value());
}

TEST(Http, ToleratesUnknownJunkHeaderLines) {
  const auto parsed = parse_request(
      to_bytes(std::string_view("GET /x HTTP/1.1\r\nthis line has no colon\r\nA: b\r\n\r\n")));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->headers.get("A"), "b");
}

}  // namespace
}  // namespace mbtls::http
