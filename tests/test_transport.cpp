// mbTLS over the simulated network: socket bindings, multi-hop TCP, link
// loss with retransmission, and timing sanity (handshake = TCP setup + two
// TLS RTTs, no extra flights for mbTLS — property P7).
#include <gtest/gtest.h>

#include "mbtls/transport.h"
#include "tests/tls_test_util.h"

namespace mbtls::mb {
namespace {

using namespace net;
using tls::testing::make_identity;
using tls::testing::test_ca;

struct WanRig {
  Simulator sim;
  Network network{sim};
  NodeId nc, nm, ns;
  std::unique_ptr<Host> client_host, mbox_host, server_host;

  explicit WanRig(double loss = 0.0, std::uint64_t seed = 1) : network(sim, seed) {
    nc = network.add_node("client");
    nm = network.add_node("mbox");
    ns = network.add_node("server");
    network.add_link(nc, nm, {.propagation = 10 * kMillisecond, .loss_rate = loss});
    network.add_link(nm, ns, {.propagation = 5 * kMillisecond, .loss_rate = loss});
    client_host = std::make_unique<Host>(network, nc);
    mbox_host = std::make_unique<Host>(network, nm);
    server_host = std::make_unique<Host>(network, ns);
  }
};

struct Parties {
  ClientSession client;
  ServerSession server;
  Middlebox mbox;
  std::unique_ptr<SocketBinding<ServerSession>> server_binding;
  std::unique_ptr<MiddleboxBinding> mbox_binding;
  std::unique_ptr<SocketBinding<ClientSession>> client_binding;

  Parties(ClientSession::Options copts, ServerSession::Options sopts, Middlebox::Options mopts)
      : client(std::move(copts)), server(std::move(sopts)), mbox(std::move(mopts)) {}
};

std::unique_ptr<Parties> wire_up(WanRig& rig, std::uint64_t seed) {
  const auto server_id = make_identity("wan.example");
  const auto mbox_id = make_identity("wanproxy.example");

  ClientSession::Options copts;
  copts.tls.trust_anchors = {test_ca().root()};
  copts.tls.server_name = "wan.example";
  copts.tls.rng_seed = seed;
  ServerSession::Options sopts;
  sopts.tls.private_key = server_id.key;
  sopts.tls.certificate_chain = server_id.chain;
  sopts.tls.rng_seed = seed + 1;
  Middlebox::Options mopts;
  mopts.name = "wanproxy.example";
  mopts.side = Middlebox::Side::kClientSide;
  mopts.private_key = mbox_id.key;
  mopts.certificate_chain = mbox_id.chain;

  auto parties = std::make_unique<Parties>(std::move(copts), std::move(sopts), std::move(mopts));

  rig.server_host->listen(443, [&rig, p = parties.get()](Socket& socket) {
    p->server_binding = std::make_unique<SocketBinding<ServerSession>>(p->server, socket);
  });
  rig.mbox_host->listen(443, [&rig, p = parties.get()](Socket& downstream) {
    Socket& upstream = rig.mbox_host->connect(rig.ns, 443);
    p->mbox_binding = std::make_unique<MiddleboxBinding>(p->mbox, downstream, upstream);
  });
  Socket& client_socket = rig.client_host->connect(rig.nm, 443);
  parties->client_binding =
      std::make_unique<SocketBinding<ClientSession>>(parties->client, client_socket);
  client_socket.on_connect = [p = parties.get()] {
    p->client.start();
    p->client_binding->flush();
  };
  return parties;
}

TEST(Transport, MbtlsSessionOverSimulatedTcp) {
  WanRig rig;
  auto parties = wire_up(rig, 100);
  rig.sim.run();
  ASSERT_TRUE(parties->client.established()) << parties->client.error_message();
  ASSERT_TRUE(parties->server.established());
  EXPECT_TRUE(parties->mbox.joined());

  parties->client.send(to_bytes(std::string_view("over tcp")));
  parties->client_binding->flush();
  rig.sim.run();
  EXPECT_EQ(to_string(parties->server.take_app_data()), "over tcp");
}

TEST(Transport, HandshakeLatencyMatchesFlightCount) {
  // TCP setup: client-mbox SYN/SYNACK (1 RTT to mbox) while mbox-server
  // connects; then the TLS handshake's two end-to-end RTTs. mbTLS must not
  // add round trips (P7): total well under 5 end-to-end RTTs.
  WanRig rig;
  auto parties = wire_up(rig, 200);
  Time established_at = 0;
  std::function<void()> poll = [&] {
    if (parties->client.established()) {
      established_at = rig.sim.now();
      return;
    }
    rig.sim.schedule(100, poll);
  };
  rig.sim.schedule(100, poll);
  rig.sim.run();
  ASSERT_GT(established_at, 0u);
  const Time e2e_rtt = 2 * (10 + 5) * kMillisecond;
  EXPECT_LT(established_at, 4 * e2e_rtt);
  EXPECT_GE(established_at, 2 * e2e_rtt);  // can't beat TCP + TLS physics
}

TEST(Transport, SurvivesPacketLoss) {
  // 20% loss on both links: TCP retransmission must still deliver the
  // byte-exact stream; mbTLS sits obliviously on top.
  WanRig rig(/*loss=*/0.2, /*seed=*/7);
  auto parties = wire_up(rig, 300);
  rig.sim.run();
  ASSERT_TRUE(parties->client.established()) << parties->client.error_message();
  EXPECT_TRUE(parties->mbox.joined());

  crypto::Drbg rng("loss-data", 0);
  const Bytes blob = rng.bytes(30'000);
  parties->client.send(blob);
  parties->client_binding->flush();
  rig.sim.run();
  EXPECT_EQ(parties->server.take_app_data(), blob);
}

TEST(Transport, LegacyRelayOverTcp) {
  // Relay-mode middlebox (legacy baseline) over the same topology.
  WanRig rig;
  const auto server_id = make_identity("relay.example");
  const auto mbox_id = make_identity("relayproxy.example");
  tls::Config ccfg;
  ccfg.is_client = true;
  ccfg.trust_anchors = {test_ca().root()};
  ccfg.server_name = "relay.example";
  tls::Engine client(ccfg);
  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = server_id.key;
  scfg.certificate_chain = server_id.chain;
  tls::Engine server(scfg);
  Middlebox::Options mopts;
  mopts.name = "relayproxy.example";
  mopts.side = Middlebox::Side::kClientSide;
  mopts.private_key = mbox_id.key;
  mopts.certificate_chain = mbox_id.chain;
  mopts.peer_known_legacy = true;  // forced relay
  Middlebox mbox(std::move(mopts));

  std::unique_ptr<SocketBinding<tls::Engine>> server_binding;
  std::unique_ptr<MiddleboxBinding> mbox_binding;
  rig.server_host->listen(443, [&](Socket& socket) {
    server_binding = std::make_unique<SocketBinding<tls::Engine>>(server, socket);
  });
  rig.mbox_host->listen(443, [&](Socket& downstream) {
    Socket& upstream = rig.mbox_host->connect(rig.ns, 443);
    mbox_binding = std::make_unique<MiddleboxBinding>(mbox, downstream, upstream);
  });
  Socket& client_socket = rig.client_host->connect(rig.nm, 443);
  SocketBinding<tls::Engine> client_binding(client, client_socket);
  client_socket.on_connect = [&] {
    client.start();
    client_binding.flush();
  };
  rig.sim.run();
  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  EXPECT_TRUE(mbox.relay_mode());
  client.send(to_bytes(std::string_view("plain tls through relay")));
  client_binding.flush();
  rig.sim.run();
  EXPECT_EQ(to_string(server.take_plaintext()), "plain tls through relay");
}

}  // namespace
}  // namespace mbtls::mb
