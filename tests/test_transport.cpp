// mbTLS over the simulated network: socket bindings, multi-hop TCP, link
// loss with retransmission, and timing sanity (handshake = TCP setup + two
// TLS RTTs, no extra flights for mbTLS — property P7).
#include <gtest/gtest.h>

#include "mbtls/transport.h"
#include "tests/tls_test_util.h"

namespace mbtls::mb {
namespace {

using namespace net;
using tls::testing::make_identity;
using tls::testing::test_ca;

struct WanRig {
  Simulator sim;
  Network network{sim};
  NodeId nc, nm, ns;
  std::unique_ptr<Host> client_host, mbox_host, server_host;

  explicit WanRig(double loss = 0.0, std::uint64_t seed = 1) : network(sim, seed) {
    nc = network.add_node("client");
    nm = network.add_node("mbox");
    ns = network.add_node("server");
    network.add_link(nc, nm, {.propagation = 10 * kMillisecond, .loss_rate = loss});
    network.add_link(nm, ns, {.propagation = 5 * kMillisecond, .loss_rate = loss});
    client_host = std::make_unique<Host>(network, nc);
    mbox_host = std::make_unique<Host>(network, nm);
    server_host = std::make_unique<Host>(network, ns);
  }
};

struct Parties {
  ClientSession client;
  ServerSession server;
  Middlebox mbox;
  std::unique_ptr<SocketBinding<ServerSession>> server_binding;
  std::unique_ptr<MiddleboxBinding> mbox_binding;
  std::unique_ptr<SocketBinding<ClientSession>> client_binding;

  Parties(ClientSession::Options copts, ServerSession::Options sopts, Middlebox::Options mopts)
      : client(std::move(copts)), server(std::move(sopts)), mbox(std::move(mopts)) {}
};

std::unique_ptr<Parties> wire_up(WanRig& rig, std::uint64_t seed) {
  const auto server_id = make_identity("wan.example");
  const auto mbox_id = make_identity("wanproxy.example");

  ClientSession::Options copts;
  copts.tls.trust_anchors = {test_ca().root()};
  copts.tls.server_name = "wan.example";
  copts.tls.rng_seed = seed;
  ServerSession::Options sopts;
  sopts.tls.private_key = server_id.key;
  sopts.tls.certificate_chain = server_id.chain;
  sopts.tls.rng_seed = seed + 1;
  Middlebox::Options mopts;
  mopts.name = "wanproxy.example";
  mopts.side = Middlebox::Side::kClientSide;
  mopts.private_key = mbox_id.key;
  mopts.certificate_chain = mbox_id.chain;

  auto parties = std::make_unique<Parties>(std::move(copts), std::move(sopts), std::move(mopts));

  rig.server_host->listen(443, [&rig, p = parties.get()](Socket& socket) {
    p->server_binding = std::make_unique<SocketBinding<ServerSession>>(p->server, socket);
  });
  rig.mbox_host->listen(443, [&rig, p = parties.get()](Socket& downstream) {
    Socket& upstream = rig.mbox_host->connect(rig.ns, 443);
    p->mbox_binding = std::make_unique<MiddleboxBinding>(p->mbox, downstream, upstream);
  });
  Socket& client_socket = rig.client_host->connect(rig.nm, 443);
  // Install the start hook first; the binding's constructor chains it ahead
  // of its own pending-drain hook.
  client_socket.on_connect = [p = parties.get()] { p->client.start(); };
  parties->client_binding =
      std::make_unique<SocketBinding<ClientSession>>(parties->client, client_socket);
  return parties;
}

TEST(Transport, MbtlsSessionOverSimulatedTcp) {
  WanRig rig;
  auto parties = wire_up(rig, 100);
  rig.sim.run();
  ASSERT_TRUE(parties->client.established()) << parties->client.error_message();
  ASSERT_TRUE(parties->server.established());
  EXPECT_TRUE(parties->mbox.joined());

  parties->client.send(to_bytes(std::string_view("over tcp")));
  parties->client_binding->flush();
  rig.sim.run();
  EXPECT_EQ(to_string(parties->server.take_app_data()), "over tcp");
}

TEST(Transport, HandshakeLatencyMatchesFlightCount) {
  // TCP setup: client-mbox SYN/SYNACK (1 RTT to mbox) while mbox-server
  // connects; then the TLS handshake's two end-to-end RTTs. mbTLS must not
  // add round trips (P7): total well under 5 end-to-end RTTs.
  WanRig rig;
  auto parties = wire_up(rig, 200);
  Time established_at = 0;
  std::function<void()> poll = [&] {
    if (parties->client.established()) {
      established_at = rig.sim.now();
      return;
    }
    rig.sim.schedule(100, poll);
  };
  rig.sim.schedule(100, poll);
  rig.sim.run();
  ASSERT_GT(established_at, 0u);
  const Time e2e_rtt = 2 * (10 + 5) * kMillisecond;
  EXPECT_LT(established_at, 4 * e2e_rtt);
  EXPECT_GE(established_at, 2 * e2e_rtt);  // can't beat TCP + TLS physics
}

TEST(Transport, SurvivesPacketLoss) {
  // 20% loss on both links: TCP retransmission must still deliver the
  // byte-exact stream; mbTLS sits obliviously on top.
  WanRig rig(/*loss=*/0.2, /*seed=*/7);
  auto parties = wire_up(rig, 300);
  rig.sim.run();
  ASSERT_TRUE(parties->client.established()) << parties->client.error_message();
  EXPECT_TRUE(parties->mbox.joined());

  crypto::Drbg rng("loss-data", 0);
  const Bytes blob = rng.bytes(30'000);
  parties->client.send(blob);
  parties->client_binding->flush();
  rig.sim.run();
  EXPECT_EQ(parties->server.take_app_data(), blob);
}

TEST(Transport, LegacyRelayOverTcp) {
  // Relay-mode middlebox (legacy baseline) over the same topology.
  WanRig rig;
  const auto server_id = make_identity("relay.example");
  const auto mbox_id = make_identity("relayproxy.example");
  tls::Config ccfg;
  ccfg.is_client = true;
  ccfg.trust_anchors = {test_ca().root()};
  ccfg.server_name = "relay.example";
  tls::Engine client(ccfg);
  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = server_id.key;
  scfg.certificate_chain = server_id.chain;
  tls::Engine server(scfg);
  Middlebox::Options mopts;
  mopts.name = "relayproxy.example";
  mopts.side = Middlebox::Side::kClientSide;
  mopts.private_key = mbox_id.key;
  mopts.certificate_chain = mbox_id.chain;
  mopts.peer_known_legacy = true;  // forced relay
  Middlebox mbox(std::move(mopts));

  std::unique_ptr<SocketBinding<tls::Engine>> server_binding;
  std::unique_ptr<MiddleboxBinding> mbox_binding;
  rig.server_host->listen(443, [&](Socket& socket) {
    server_binding = std::make_unique<SocketBinding<tls::Engine>>(server, socket);
  });
  rig.mbox_host->listen(443, [&](Socket& downstream) {
    Socket& upstream = rig.mbox_host->connect(rig.ns, 443);
    mbox_binding = std::make_unique<MiddleboxBinding>(mbox, downstream, upstream);
  });
  Socket& client_socket = rig.client_host->connect(rig.nm, 443);
  client_socket.on_connect = [&] { client.start(); };
  SocketBinding<tls::Engine> client_binding(client, client_socket);
  rig.sim.run();
  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  EXPECT_TRUE(mbox.relay_mode());
  client.send(to_bytes(std::string_view("plain tls through relay")));
  client_binding.flush();
  rig.sim.run();
  EXPECT_EQ(to_string(server.take_plaintext()), "plain tls through relay");
}

// ---------------------------------------------------------------------------
// Transport-glue regressions, driven through a scriptable Stream double so
// each bug's exact trigger (a transient !writable(), a pre-installed
// on_connect, a binding destroyed before its timer) can be staged directly.

/// A Stream whose readiness flags are test-controlled and whose sends are
/// recorded verbatim.
struct FakeStream final : net::Stream {
  bool is_established = false;
  bool is_closed = false;
  bool is_writable = true;
  Bytes sent;

  void send(ByteView data) override { append(sent, data); }
  void close() override { become_closed(); }
  void reset() override { become_closed(); }
  bool established() const override { return is_established; }
  bool closed() const override { return is_closed; }
  bool writable() const override { return !is_closed && is_writable; }
  SocketError error() const override { return SocketError::kNone; }

  void establish() {
    is_established = true;
    if (on_connect) on_connect();
  }
  void deliver(ByteView data) {
    if (on_data) on_data(data);
  }
  void unblock() {
    is_writable = true;
    if (on_writable) on_writable();
  }
  void become_closed() {
    if (is_closed) return;
    is_closed = true;
    is_established = false;
    if (on_close) on_close();
  }
};

tls::Engine make_test_client() {
  tls::Config cfg;
  cfg.is_client = true;
  cfg.trust_anchors = {test_ca().root()};
  cfg.server_name = "glue.example";
  return tls::Engine(cfg);
}

TEST(TransportGlue, SocketBindingBuffersUntilWritable) {
  // Regression: flush() used to hand take_output() to send() regardless of
  // writability — over real sockets a backpressured destination lost the
  // record. The binding must hold the bytes and drain on the writable edge.
  auto client = make_test_client();
  FakeStream stream;
  stream.is_established = true;
  stream.is_writable = false;
  SocketBinding<tls::Engine> binding(client, stream);
  client.start();
  binding.flush();
  EXPECT_TRUE(stream.sent.empty());  // buffered, not dropped
  stream.unblock();
  EXPECT_FALSE(stream.sent.empty());  // ClientHello arrives intact
}

TEST(TransportGlue, SocketBindingChainsPriorConnectHandler) {
  // Regression: flush() used to reassign on_connect on every
  // pre-establishment call, silently clobbering a start-the-session handler
  // installed by the application. The constructor now chains it once.
  auto client = make_test_client();
  FakeStream stream;
  int started = 0;
  stream.on_connect = [&] { ++started; };
  SocketBinding<tls::Engine> binding(client, stream);
  client.start();
  binding.flush();               // pre-establishment: output is buffered
  binding.flush();               // a second flush must not clobber the chain
  EXPECT_TRUE(stream.sent.empty());
  stream.establish();
  EXPECT_EQ(started, 1);              // the prior handler still ran
  EXPECT_FALSE(stream.sent.empty());  // and the drain hook ran after it
}

TEST(TransportGlue, SocketBindingDropsPendingOnClose) {
  auto client = make_test_client();
  FakeStream stream;
  SocketBinding<tls::Engine> binding(client, stream);
  client.start();
  binding.flush();  // buffered: never established
  stream.become_closed();
  binding.flush();  // must not send() into a closed stream
  EXPECT_TRUE(stream.sent.empty());
}

Middlebox make_relay_mbox() {
  const auto mbox_id = make_identity("glueproxy.example");
  Middlebox::Options mopts;
  mopts.name = "glueproxy.example";
  mopts.side = Middlebox::Side::kClientSide;
  mopts.private_key = mbox_id.key;
  mopts.certificate_chain = mbox_id.chain;
  mopts.peer_known_legacy = true;  // forced relay: bytes pass through verbatim
  return Middlebox(std::move(mopts));
}

TEST(TransportGlue, MiddleboxBuffersUpstreamOnBackpressure) {
  // Regression: flush() silently discarded take_to_server() output when the
  // upstream socket existed but was not writable (real-socket short-write
  // backpressure). The record must be buffered and drained on the edge.
  auto mbox = make_relay_mbox();
  FakeStream down, up;
  down.is_established = true;
  up.is_established = true;
  up.is_writable = false;
  MiddleboxBinding binding(mbox, down, up);
  down.deliver(to_bytes(std::string_view("client flight")));
  EXPECT_TRUE(up.sent.empty());  // held, not lost
  up.unblock();
  EXPECT_EQ(to_string(up.sent), "client flight");
}

TEST(TransportGlue, MiddleboxBuffersDownstreamOnBackpressure) {
  // The symmetric direction — take_to_client() toward a non-writable
  // downstream — had no buffer at all.
  auto mbox = make_relay_mbox();
  FakeStream down, up;
  down.is_established = true;
  down.is_writable = false;
  up.is_established = true;
  MiddleboxBinding binding(mbox, down, up);
  up.deliver(to_bytes(std::string_view("server flight")));
  EXPECT_TRUE(down.sent.empty());
  down.unblock();
  EXPECT_EQ(to_string(down.sent), "server flight");
}

TEST(TransportGlue, MiddleboxAccumulatesWhileBlocked) {
  // Multiple records arriving while blocked drain in order as one stream.
  auto mbox = make_relay_mbox();
  FakeStream down, up;
  down.is_established = true;
  up.is_established = true;
  up.is_writable = false;
  MiddleboxBinding binding(mbox, down, up);
  down.deliver(to_bytes(std::string_view("first ")));
  down.deliver(to_bytes(std::string_view("second")));
  EXPECT_TRUE(up.sent.empty());
  up.unblock();
  EXPECT_EQ(to_string(up.sent), "first second");
}

TEST(TransportGlue, HandshakeDeadlineTimerOutlivesBinding) {
  // Regression: arm_handshake_deadline() captured raw `this`; a binding
  // destroyed before the timer fired (the FallbackClient redial pattern)
  // left a dangling callback in the scheduler. The weak liveness token makes
  // the late firing a no-op — ASan (this test runs under the asan preset via
  // scripts/check.sh) would flag the old heap-use-after-free.
  Simulator sim;
  auto stream = std::make_unique<FakeStream>();
  {
    ClientSession::Options copts;
    copts.tls.trust_anchors = {test_ca().root()};
    copts.tls.server_name = "glue.example";
    copts.tls.rng_seed = 41;
    ClientSession client(std::move(copts));
    SocketBinding<ClientSession> binding(client, *stream);
    binding.arm_handshake_deadline(sim, kSecond);
  }  // binding destroyed; its timer is still queued
  stream.reset();
  EXPECT_EQ(sim.run(), RunStatus::kDrained);  // fires as a guarded no-op
}

TEST(TransportGlue, JoinDeadlineTimerOutlivesBinding) {
  Simulator sim;
  auto down = std::make_unique<FakeStream>();
  auto up = std::make_unique<FakeStream>();
  {
    auto mbox = make_relay_mbox();
    MiddleboxBinding binding(mbox, *down, *up);
    binding.arm_join_deadline(sim, kSecond);
  }
  down.reset();
  up.reset();
  EXPECT_EQ(sim.run(), RunStatus::kDrained);
}

TEST(TransportGlue, FallbackDeadlineTimerOutlivesClient) {
  // The same liveness rule for FallbackClient's own deadline timer, plus its
  // destructor unhooking every stream callback: destroying the client right
  // after start() must leave the simulator free of dangling references.
  WanRig rig;
  rig.mbox_host->listen(443, [](Socket&) {});  // accept and ignore
  {
    FallbackClient::Config config;
    config.proxy = {rig.nm, 443, ""};
    config.origin = {rig.ns, 443, ""};
    config.options.tls.trust_anchors = {test_ca().root()};
    config.options.tls.server_name = "wan.example";
    config.options.tls.rng_seed = 19;
    config.options.handshake_timeout = kSecond;
    FallbackClient fallback(*rig.client_host, config);
    fallback.start();
  }  // destroyed with the dial and the deadline in flight
  EXPECT_EQ(rig.sim.run(), RunStatus::kDrained);
}

}  // namespace
}  // namespace mbtls::mb
