// Hostile-path suite: every mbTLS session under every chaos tap must either
// complete with byte-exact data or fail with an explicit error, in bounded
// virtual time — never hang, never deliver corrupted plaintext — and the
// same seed must reproduce the same outcome bit-for-bit.
//
// The harness models what real deployments have above TLS: per-endpoint
// handshake deadlines and an application-level read watchdog that tears the
// connection down (fatal alert + TCP teardown) if the transfer stops making
// progress. The invariant is asserted over the whole system: sessions,
// middlebox, bindings, TCP, and the fault-injected links.
#include <gtest/gtest.h>

#include "mbtls/cache.h"
#include "mbtls/metrics.h"
#include "mbtls/transport.h"
#include "net/chaos.h"
#include "tests/tls_test_util.h"
#include "tls/ticket.h"

namespace mbtls::mb {
namespace {

using namespace net;
using tls::testing::make_identity;
using tls::testing::test_ca;

constexpr Time kHandshakeDeadline = 20 * kSecond;
constexpr Time kWatchdog = 90 * kSecond;   // application read deadline
constexpr Time kVirtualCap = 200 * kSecond;  // nothing may outlive this

struct ChaosRig {
  Simulator sim;
  Network network;
  NodeId nc, nm, ns;
  std::unique_ptr<Host> client_host, mbox_host, server_host;

  explicit ChaosRig(std::uint64_t seed = 1) : network(sim, seed) {
    nc = network.add_node("client");
    nm = network.add_node("mbox");
    ns = network.add_node("server");
    network.add_link(nc, nm, {.propagation = 10 * kMillisecond});
    network.add_link(nm, ns, {.propagation = 5 * kMillisecond});
    client_host = std::make_unique<Host>(network, nc);
    mbox_host = std::make_unique<Host>(network, nm);
    server_host = std::make_unique<Host>(network, ns);
  }
};

struct ChaosParties {
  ClientSession client;
  ServerSession server;
  Middlebox mbox;
  std::unique_ptr<SocketBinding<ServerSession>> server_binding;
  std::unique_ptr<MiddleboxBinding> mbox_binding;
  std::unique_ptr<SocketBinding<ClientSession>> client_binding;
  Socket* mbox_down = nullptr;  // for the mbox-death scenario
  Socket* mbox_up = nullptr;

  ChaosParties(ClientSession::Options copts, ServerSession::Options sopts,
               Middlebox::Options mopts)
      : client(std::move(copts)), server(std::move(sopts)), mbox(std::move(mopts)) {}
};

/// Hook for scenarios that carry state across runs (resumption caches,
/// rotating ticket keys): runs on the freshly built options before the
/// parties are constructed.
using OptionsHook =
    std::function<void(ClientSession::Options&, ServerSession::Options&)>;

std::unique_ptr<ChaosParties> wire_up(ChaosRig& rig, std::uint64_t seed,
                                      Time deadline = kHandshakeDeadline,
                                      trace::Sink* sink = nullptr,
                                      const OptionsHook& customize = {}) {
  // One identity per process: the byte-for-byte trace determinism test needs
  // run N and run N+1 to present identical certificates (a fresh identity
  // per run would shift record lengths and key fingerprints).
  static const auto server_id = make_identity("chaos.example");
  static const auto mbox_id = make_identity("chaosproxy.example");

  ClientSession::Options copts;
  copts.tls.trust_anchors = {test_ca().root()};
  copts.tls.server_name = "chaos.example";
  copts.tls.rng_seed = seed;
  copts.handshake_timeout = deadline;
  copts.trace_sink = sink;
  ServerSession::Options sopts;
  sopts.tls.private_key = server_id.key;
  sopts.tls.certificate_chain = server_id.chain;
  sopts.tls.rng_seed = seed + 1;
  sopts.handshake_timeout = deadline;
  sopts.trace_sink = sink;
  Middlebox::Options mopts;
  mopts.name = "chaosproxy.example";
  mopts.side = Middlebox::Side::kClientSide;
  mopts.private_key = mbox_id.key;
  mopts.certificate_chain = mbox_id.chain;
  mopts.handshake_timeout = deadline;
  mopts.trace_sink = sink;
  if (customize) customize(copts, sopts);

  auto parties = std::make_unique<ChaosParties>(std::move(copts), std::move(sopts),
                                                std::move(mopts));

  rig.server_host->listen(443, [&rig, deadline, p = parties.get()](Socket& socket) {
    p->server_binding = std::make_unique<SocketBinding<ServerSession>>(p->server, socket);
    p->server_binding->arm_handshake_deadline(rig.sim, deadline);
  });
  rig.mbox_host->listen(443, [&rig, deadline, p = parties.get()](Socket& downstream) {
    Socket& upstream = rig.mbox_host->connect(rig.ns, 443);
    p->mbox_down = &downstream;
    p->mbox_up = &upstream;
    p->mbox_binding = std::make_unique<MiddleboxBinding>(p->mbox, downstream, upstream);
    p->mbox_binding->arm_join_deadline(rig.sim, deadline);
  });
  Socket& client_socket = rig.client_host->connect(rig.nm, 443);
  parties->client_binding =
      std::make_unique<SocketBinding<ClientSession>>(parties->client, client_socket);
  client_socket.on_connect = [p = parties.get()] {
    p->client.start();
    p->client_binding->flush();
  };
  parties->client_binding->arm_handshake_deadline(rig.sim, deadline);
  return parties;
}

template <typename Session>
bool terminal(const Session& s) {
  return s.failed() || s.status() == SessionStatus::kClosed;
}

struct Outcome {
  bool completed = false;               // server got the byte-exact blob
  bool delivered_prefix_intact = true;  // plaintext never corrupted
  bool client_terminal = false;
  bool server_terminal = false;
  bool resumed = false;  // primary came up abbreviated
  std::string client_error, server_error;
  RunStatus status = RunStatus::kDrained;
  Time finished_at = 0;

  std::string fingerprint() const {
    return std::to_string(completed) + "|" + std::to_string(client_terminal) + "|" +
           std::to_string(server_terminal) + "|" + std::to_string(resumed) + "|" +
           client_error + "|" + server_error + "|" + std::to_string(finished_at);
  }
};

/// One chaos run: client dials through the middlebox, sends a 12 kB blob
/// once established; the run ends when the blob arrived intact or both
/// endpoints reached an explicit terminal state.
Outcome run_chaos(std::uint64_t seed, const std::function<void(ChaosRig&)>& install,
                  Time deadline = kHandshakeDeadline, trace::Recorder* rec = nullptr,
                  const OptionsHook& customize = {}) {
  ChaosRig rig(seed);
  if (rec) {
    // Virtual-clock timestamps: a deterministic run leaves a byte-identical
    // trace (no wall time, no pointers).
    rec->set_clock([sim = &rig.sim] { return sim->now(); });
    rig.network.set_trace(rec);
  }
  auto parties = wire_up(rig, seed, deadline, rec, customize);
  install(rig);

  crypto::Drbg blob_rng("chaos-blob", seed);
  const Bytes blob = blob_rng.bytes(12'000);
  Bytes received;
  bool sent = false;

  std::function<void()> poll = [&] {
    append(received, parties->server.take_app_data());
    if (!sent && parties->client.established()) {
      sent = true;
      parties->client.send(blob);
      parties->client_binding->flush();
    }
    const bool done = received.size() >= blob.size() ||
                      (terminal(parties->client) &&
                       (!parties->server_binding || terminal(parties->server)));
    if (!done) rig.sim.schedule(5 * kMillisecond, poll);
  };
  rig.sim.schedule(5 * kMillisecond, poll);

  // Application-level read deadline: whatever is still limping gets torn
  // down explicitly — the invariant's backstop against silent stalls below
  // the record layer (e.g. a record dropped by a hop after an auth failure).
  rig.sim.schedule(kWatchdog, [&] {
    if (received.size() >= blob.size()) return;
    if (!terminal(parties->client)) {
      parties->client.abort("application watchdog");
      parties->client_binding->flush();
      if (parties->client_binding->socket().writable()) parties->client_binding->socket().close();
    }
    if (parties->server_binding && !terminal(parties->server)) {
      parties->server.abort("application watchdog");
      parties->server_binding->flush();
      if (parties->server_binding->socket().writable()) parties->server_binding->socket().close();
    }
  });

  Outcome out;
  out.status = rig.sim.run_until(kVirtualCap, 5'000'000);
  append(received, parties->server.take_app_data());
  out.delivered_prefix_intact =
      received.size() <= blob.size() &&
      std::equal(received.begin(), received.end(), blob.begin());
  out.completed = received.size() == blob.size() && out.delivered_prefix_intact;
  out.client_terminal = terminal(parties->client);
  out.server_terminal = !parties->server_binding || terminal(parties->server);
  out.client_error = parties->client.error_message();
  out.server_error = parties->server.error_message();
  out.resumed = parties->client.established() && parties->client.primary().resumed();
  out.finished_at = rig.sim.now();
  return out;
}

/// The repo-wide robustness invariant.
void expect_invariant(const Outcome& o) {
  // No hang: every event ran and the queue drained inside the virtual cap,
  // without hitting the runaway budget.
  EXPECT_EQ(o.status, RunStatus::kDrained);
  EXPECT_LE(o.finished_at, kVirtualCap);
  // No corruption ever reaches the application.
  EXPECT_TRUE(o.delivered_prefix_intact);
  // Dichotomy: intact completion, or both endpoints explicitly terminal.
  EXPECT_TRUE(o.completed || (o.client_terminal && o.server_terminal))
      << "client=" << o.client_error << " server=" << o.server_error;
  if (!o.completed) {
    EXPECT_FALSE(o.client_error.empty() && o.server_error.empty())
        << "failure without any explicit error";
  }
}

// --------------------------------------------------------------- the matrix

TEST(Chaos, CorruptByteEitherCompletesOrFailsExplicitly) {
  // No checksum in the simplified TCP: flipped bytes reach the record layer
  // and the AEAD must be the arbiter. Depending on what the flip hits the
  // session completes (flip in a retransmitted-over segment) or fails with
  // an authentication error — silent corruption is never an outcome.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Outcome o = run_chaos(seed, [&](ChaosRig& rig) {
      rig.network.add_tap(rig.nc, rig.nm,
                          ChaosTap::corrupt_byte(crypto::Drbg("chaos-corrupt-a", seed), 0.04));
      rig.network.add_tap(rig.nm, rig.ns,
                          ChaosTap::corrupt_byte(crypto::Drbg("chaos-corrupt-b", seed), 0.04));
    });
    expect_invariant(o);
  }
}

TEST(Chaos, TruncateRecoversViaRetransmission) {
  // A truncated segment leaves a sequence gap; go-back-N must refill it and
  // deliver the byte-exact stream.
  for (std::uint64_t seed : {1u, 2u}) {
    const Outcome o = run_chaos(seed, [&](ChaosRig& rig) {
      rig.network.add_tap(rig.nc, rig.nm,
                          ChaosTap::truncate(crypto::Drbg("chaos-trunc", seed), 0.15));
    });
    expect_invariant(o);
    EXPECT_TRUE(o.completed) << o.client_error << " / " << o.server_error;
  }
}

TEST(Chaos, DuplicatesAreDeduplicated) {
  for (std::uint64_t seed : {1u, 2u}) {
    const Outcome o = run_chaos(seed, [&](ChaosRig& rig) {
      rig.network.add_tap(rig.nc, rig.nm,
                          ChaosTap::duplicate(rig.network, rig.nc, rig.nm,
                                              crypto::Drbg("chaos-dup", seed), 0.3));
    });
    expect_invariant(o);
    EXPECT_TRUE(o.completed) << o.client_error << " / " << o.server_error;
  }
}

TEST(Chaos, ReorderingReassembles) {
  for (std::uint64_t seed : {1u, 2u}) {
    const Outcome o = run_chaos(seed, [&](ChaosRig& rig) {
      rig.network.add_tap(rig.nm, rig.ns,
                          ChaosTap::reorder_within_window(rig.network, rig.nm, rig.ns,
                                                          crypto::Drbg("chaos-reorder", seed),
                                                          /*window=*/4));
    });
    expect_invariant(o);
    EXPECT_TRUE(o.completed) << o.client_error << " / " << o.server_error;
  }
}

TEST(Chaos, StallShorterThanDeadlineCompletesLate) {
  // A 3-second freeze of the mbox-server link mid-handshake: backoff rides
  // it out and the session completes once the backlog releases.
  const Outcome o = run_chaos(7, [&](ChaosRig& rig) {
    rig.network.add_tap(rig.nm, rig.ns,
                        ChaosTap::stall_for_duration(rig.network, rig.nm, rig.ns,
                                                     /*start_after=*/5 * kMillisecond,
                                                     /*duration=*/3 * kSecond));
  });
  expect_invariant(o);
  EXPECT_TRUE(o.completed) << o.client_error << " / " << o.server_error;
  EXPECT_GT(o.finished_at, 3 * kSecond);  // it really did wait out the stall
}

TEST(Chaos, StallBeyondDeadlineFailsCleanly) {
  // The freeze outlives the handshake deadline: the client must send its
  // fatal alert and fail with an explicit deadline error, never hang.
  const Outcome o = run_chaos(8, [&](ChaosRig& rig) {
    rig.network.add_tap(rig.nm, rig.ns,
                        ChaosTap::stall_for_duration(rig.network, rig.nm, rig.ns,
                                                     /*start_after=*/5 * kMillisecond,
                                                     /*duration=*/60 * kSecond));
  });
  expect_invariant(o);
  EXPECT_FALSE(o.completed);
  EXPECT_EQ(o.client_error, "handshake deadline exceeded");
}

TEST(Chaos, BlackholeKillsBothEndpointsExplicitly) {
  // The path silently dies after N packets: retransmission exhaustion (with
  // bounded backoff) plus deadlines must terminate both ends — the "mbox
  // host dies" failure from the network's point of view.
  // n=5: the link dies mid-handshake — completion is impossible, so both
  // endpoints must reach an explicit error (deadline or transport death).
  const Outcome died_early = run_chaos(14, [](ChaosRig& rig) {
    rig.network.add_tap(rig.nm, rig.ns, ChaosTap::blackhole_after(5));
  });
  expect_invariant(died_early);
  EXPECT_FALSE(died_early.completed);
  EXPECT_FALSE(died_early.client_error.empty());
  EXPECT_FALSE(died_early.server_error.empty());

  // Larger budgets die somewhere between mid-handshake and after-the-data
  // (TCP bursts segments, so the blob can beat the blackhole); wherever the
  // cut lands, the dichotomy must hold.
  for (std::size_t n : {20u, 30u}) {
    const Outcome o = run_chaos(9 + n, [&](ChaosRig& rig) {
      rig.network.add_tap(rig.nm, rig.ns, ChaosTap::blackhole_after(n));
    });
    expect_invariant(o);
  }
}

TEST(Chaos, ComposedTapsStillSatisfyInvariant) {
  // Taps compose in install order; a link that corrupts AND duplicates AND
  // reorders is still within the contract.
  for (std::uint64_t seed : {1u, 5u}) {
    const Outcome o = run_chaos(seed, [&](ChaosRig& rig) {
      rig.network.add_tap(rig.nc, rig.nm,
                          ChaosTap::corrupt_byte(crypto::Drbg("combo-corrupt", seed), 0.02));
      rig.network.add_tap(rig.nc, rig.nm,
                          ChaosTap::duplicate(rig.network, rig.nc, rig.nm,
                                              crypto::Drbg("combo-dup", seed), 0.2));
      rig.network.add_tap(rig.nm, rig.ns,
                          ChaosTap::reorder_within_window(rig.network, rig.nm, rig.ns,
                                                          crypto::Drbg("combo-reorder", seed),
                                                          /*window=*/3));
    });
    expect_invariant(o);
  }
}

// ------------------------------------------------------------ determinism

TEST(Chaos, SameSeedSameOutcome) {
  auto scenario = [](ChaosRig& rig) {
    rig.network.add_tap(rig.nc, rig.nm,
                        ChaosTap::corrupt_byte(crypto::Drbg("chaos-repro", 42), 0.08));
    rig.network.add_tap(rig.nm, rig.ns,
                        ChaosTap::duplicate(rig.network, rig.nm, rig.ns,
                                            crypto::Drbg("chaos-repro-dup", 42), 0.2));
  };
  const Outcome first = run_chaos(42, scenario);
  const Outcome second = run_chaos(42, scenario);
  expect_invariant(first);
  EXPECT_EQ(first.fingerprint(), second.fingerprint());
}

TEST(Chaos, SameSeedSameTraceByteForByte) {
  // The determinism invariant, strengthened to the full trace: the same DRBG
  // seed and the same chaos taps reproduce the identical event sequence with
  // identical virtual timestamps — every net segment, every TLS flight,
  // every mbtls session event. Asserted on the exported bytes, so exporter
  // order is pinned too.
  auto scenario = [](ChaosRig& rig) {
    // Corruption rate high enough that the tap reliably mutates at least one
    // packet (the assertion below wants a genuinely hostile trace); whether
    // the transfer then completes or fails gracefully, both runs must agree.
    rig.network.add_tap(rig.nc, rig.nm,
                        ChaosTap::corrupt_byte(crypto::Drbg("chaos-trace", 42), 0.25));
    rig.network.add_tap(rig.nm, rig.ns,
                        ChaosTap::duplicate(rig.network, rig.nm, rig.ns,
                                            crypto::Drbg("chaos-trace-dup", 42), 0.15));
  };
  trace::Recorder first, second;
  const Outcome o1 = run_chaos(42, scenario, kHandshakeDeadline, &first);
  const Outcome o2 = run_chaos(42, scenario, kHandshakeDeadline, &second);
  expect_invariant(o1);
  EXPECT_EQ(o1.fingerprint(), o2.fingerprint());
  ASSERT_FALSE(first.events().empty());
  EXPECT_EQ(first.events().size(), second.events().size());
  EXPECT_EQ(first.chrome_trace_json(), second.chrome_trace_json());
  EXPECT_EQ(first.counter_dump(), second.counter_dump());
  // The taps really fired into the trace (the runs were genuinely hostile).
  EXPECT_GT(summarize(first.events()).taps_fired, 0u);
}

// ----------------------------------------------------- targeted scenarios

TEST(Chaos, ExpiredHandshakeEmitsFatalAlert) {
  // Unit-level check of the deadline hook itself: the session must emit a
  // well-formed fatal handshake_failure alert when its deadline fires.
  ClientSession::Options opts;
  opts.tls.trust_anchors = {test_ca().root()};
  opts.tls.server_name = "expired.example";
  ClientSession client(std::move(opts));
  client.start();
  (void)client.take_output();  // drop the ClientHello
  ASSERT_TRUE(client.handshake_expired());
  const Bytes out = client.take_output();
  tls::RecordReader reader;
  reader.feed(out);
  const auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->type, tls::ContentType::kAlert);
  const auto alert = parse_alert(record->payload);
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->level, tls::AlertLevel::kFatal);
  EXPECT_EQ(alert->description, tls::AlertDescription::kHandshakeFailure);
  EXPECT_TRUE(client.failed());
  // Idempotent: a second expiry on a dead session is a no-op.
  EXPECT_FALSE(client.handshake_expired());
}

TEST(Chaos, MiddleboxDiesMidSessionBothEndpointsTerminate) {
  ChaosRig rig(11);
  auto parties = wire_up(rig, 11);
  bool killed = false;
  std::function<void()> kill_when_established = [&] {
    if (parties->client.established() && parties->server.established()) {
      killed = true;
      // The middlebox process dies: both its TCP connections abort.
      if (parties->mbox_up) parties->mbox_up->reset();
      if (parties->mbox_down) parties->mbox_down->reset();
      return;
    }
    rig.sim.schedule(10 * kMillisecond, kill_when_established);
  };
  rig.sim.schedule(10 * kMillisecond, kill_when_established);

  EXPECT_EQ(rig.sim.run_until(kVirtualCap, 5'000'000), RunStatus::kDrained);
  ASSERT_TRUE(killed);
  EXPECT_TRUE(parties->client.failed());
  EXPECT_TRUE(parties->server.failed());
  EXPECT_NE(parties->client.error_message().find("transport closed"), std::string::npos);
  EXPECT_NE(parties->server.error_message().find("transport closed"), std::string::npos);
}

TEST(Chaos, StalledMiddleboxFallsBackToDirectTls) {
  // P5: the proxy accepts TCP but its application is wedged (never dials
  // upstream, never answers). The client's deadline fires, it abandons the
  // mbTLS attempt, and redials the origin with plain end-to-end TLS.
  ChaosRig rig(12);
  const auto server_id = make_identity("chaos.example");

  // Dead proxy: accept and sit on the bytes forever.
  rig.mbox_host->listen(443, [](Socket&) {});

  // Origin accepts any number of connections, one ServerSession each.
  struct Accepted {
    std::unique_ptr<ServerSession> session;
    std::unique_ptr<SocketBinding<ServerSession>> binding;
  };
  std::vector<Accepted> accepted;
  rig.server_host->listen(443, [&](Socket& socket) {
    ServerSession::Options sopts;
    sopts.tls.private_key = server_id.key;
    sopts.tls.certificate_chain = server_id.chain;
    sopts.tls.rng_seed = 77 + accepted.size();
    auto session = std::make_unique<ServerSession>(std::move(sopts));
    auto binding = std::make_unique<SocketBinding<ServerSession>>(*session, socket);
    accepted.push_back({std::move(session), std::move(binding)});
  });

  FallbackClient::Config config;
  config.proxy = {rig.nm, 443, ""};
  config.origin = {rig.ns, 443, ""};
  config.options.tls.trust_anchors = {test_ca().root()};
  config.options.tls.server_name = "chaos.example";
  config.options.tls.rng_seed = 13;
  config.options.handshake_timeout = 5 * kSecond;
  config.options.fallback_to_direct_tls = true;
  FallbackClient fallback(*rig.client_host, config);
  fallback.start();

  EXPECT_EQ(rig.sim.run_until(kVirtualCap, 5'000'000), RunStatus::kDrained);
  EXPECT_TRUE(fallback.fell_back());
  ASSERT_TRUE(fallback.session().established()) << fallback.session().error_message();
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_TRUE(accepted[0].session->established());
  // The fallback session is plain end-to-end TLS: no middleboxes joined.
  EXPECT_TRUE(fallback.session().middleboxes().empty());

  // Data still flows on the degraded path.
  fallback.session().send(to_bytes(std::string_view("degraded but alive")));
  fallback.flush();
  EXPECT_EQ(rig.sim.run(), RunStatus::kDrained);
  EXPECT_EQ(to_string(accepted[0].session->take_app_data()), "degraded but alive");
}

TEST(Chaos, TicketExchangeCorruptedMidRotation) {
  // Control-plane chaos: connection 1 populates a session ticket cleanly,
  // the fleet then rotates its ticket key (the cached ticket is now sealed
  // under the previous generation — the abbreviated flight must carry a
  // reissued NewSessionTicket), and connection 2 runs that exchange over
  // links that corrupt and truncate records. Whatever the taps hit — the
  // offered ticket, the reissued one, the Finished — the invariant holds:
  // byte-exact completion or explicit errors at both ends, in bounded
  // virtual time, bit-identical per seed.
  auto episode = [](std::uint64_t seed) {
    tls::TicketKeyManager keys("chaos-ticket-keys", seed);
    ShardedSessionCache client_cache({.shards = 2, .capacity_per_shard = 8});
    const OptionsHook customize = [&](ClientSession::Options& c,
                                      ServerSession::Options& s) {
      c.tls.session_cache = &client_cache;
      c.tls.offer_resumption = true;
      c.tls.enable_session_tickets = true;
      s.tls.enable_session_tickets = true;
      s.tls.ticket_keys = &keys;
    };

    const Outcome first = run_chaos(seed, [](ChaosRig&) {}, kHandshakeDeadline,
                                    nullptr, customize);
    expect_invariant(first);
    EXPECT_TRUE(first.completed);
    EXPECT_FALSE(first.resumed);
    EXPECT_GT(client_cache.size(), 0u);

    keys.rotate();  // mid-rotation: the held ticket is one generation old

    const Outcome second = run_chaos(
        seed,
        [seed](ChaosRig& rig) {
          rig.network.add_tap(
              rig.nc, rig.nm,
              ChaosTap::corrupt_byte(crypto::Drbg("chaos-rot-corrupt", seed), 0.03));
          rig.network.add_tap(
              rig.nm, rig.ns,
              ChaosTap::truncate(crypto::Drbg("chaos-rot-trunc", seed), 0.08));
        },
        kHandshakeDeadline, nullptr, customize);
    expect_invariant(second);
    return first.fingerprint() + "#" + second.fingerprint();
  };

  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    // Same seed, same outcome, bit for bit — rotation included.
    EXPECT_EQ(episode(seed), episode(seed)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mbtls::mb
