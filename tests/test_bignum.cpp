// BigInt arithmetic: known answers, algebraic properties, and primality.
#include <gtest/gtest.h>

#include "bignum/bignum.h"
#include "bignum/prime.h"
#include "util/hex.h"

namespace mbtls::bn {
namespace {

TEST(BigInt, HexRoundTrip) {
  const BigInt a = BigInt::from_hex("deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(a.to_hex(), "deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(BigInt().to_hex(), "0");
  EXPECT_EQ(BigInt(255).to_hex(), "ff");
}

TEST(BigInt, BytesRoundTripWithPadding) {
  const BigInt a(0x1234);
  EXPECT_EQ(hex_encode(a.to_bytes(4)), "00001234");
  EXPECT_EQ(BigInt::from_bytes(a.to_bytes(16)), a);
}

TEST(BigInt, AddSubtract) {
  const BigInt a = BigInt::from_hex("ffffffffffffffffffffffffffffffff");  // 2^128-1
  const BigInt one(1);
  const BigInt sum = a + one;
  EXPECT_EQ(sum.to_hex(), "100000000000000000000000000000000");
  EXPECT_EQ(sum - one, a);
  EXPECT_EQ(sum - sum, BigInt());
  EXPECT_THROW(one - sum, std::underflow_error);
}

TEST(BigInt, MultiplyKnownAnswer) {
  const BigInt a = BigInt::from_hex("ffffffffffffffff");
  EXPECT_EQ((a * a).to_hex(), "fffffffffffffffe0000000000000001");
  EXPECT_EQ((a * BigInt()).to_hex(), "0");
}

TEST(BigInt, CompareOrdering) {
  const BigInt a(5), b(7);
  const BigInt big = BigInt::from_hex("10000000000000000");
  EXPECT_LT(a, b);
  EXPECT_LT(b, big);
  EXPECT_GT(big, a);
  EXPECT_EQ(a.compare(BigInt(5)), 0);
}

TEST(BigInt, Shifts) {
  const BigInt a(1);
  EXPECT_EQ((a << 64).to_hex(), "10000000000000000");
  EXPECT_EQ(((a << 130) >> 130), a);
  EXPECT_EQ((a >> 1).to_hex(), "0");
  EXPECT_EQ(BigInt::from_hex("ff00").operator>>(8).to_hex(), "ff");
}

TEST(BigInt, DivModKnownAnswers) {
  const BigInt a = BigInt::from_hex("deadbeefdeadbeefdeadbeef");
  const BigInt b = BigInt::from_hex("12345");
  const auto [q, r] = a.divmod(b);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
  EXPECT_THROW(a.divmod(BigInt()), std::domain_error);
  // Single-limb fast path agrees with multi-limb path.
  const BigInt c = BigInt::from_hex("100000000000000000000000000000001");
  const auto [q2, r2] = c.divmod(BigInt(7));
  EXPECT_EQ(q2 * BigInt(7) + r2, c);
}

TEST(BigInt, DivisionProperty) {
  crypto::Drbg rng("bignum-div", 0);
  for (int i = 0; i < 50; ++i) {
    const BigInt a = random_bits(512, rng);
    const BigInt b = random_bits(200, rng);
    const auto [q, r] = a.divmod(b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

TEST(BigInt, ModExpSmallKnownAnswers) {
  EXPECT_EQ(BigInt(3).mod_exp(BigInt(4), BigInt(5)), BigInt(1));    // 81 mod 5
  EXPECT_EQ(BigInt(2).mod_exp(BigInt(10), BigInt(1000)), BigInt(24));  // 1024 mod 1000
  EXPECT_EQ(BigInt(7).mod_exp(BigInt(), BigInt(13)), BigInt(1));    // x^0 = 1
}

TEST(BigInt, ModExpFermat) {
  // Fermat's little theorem for a known prime: a^(p-1) = 1 mod p.
  const BigInt p = BigInt::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
  crypto::Drbg rng("fermat", 0);
  for (int i = 0; i < 5; ++i) {
    const BigInt a = random_below(p - BigInt(2), rng) + BigInt(2);
    EXPECT_EQ(a.mod_exp(p - BigInt(1), p), BigInt(1));
  }
}

TEST(BigInt, ModExpEvenModulus) {
  // Even modulus exercises the non-Montgomery path.
  EXPECT_EQ(BigInt(3).mod_exp(BigInt(5), BigInt(100)), BigInt(43));  // 243 mod 100
}

TEST(BigInt, ModExpMatchesNaive) {
  crypto::Drbg rng("modexp-naive", 0);
  const BigInt m = random_bits(128, rng) + BigInt(1);
  BigInt base = random_bits(100, rng);
  const std::uint64_t e = 1 + rng.uniform(50);
  // Naive repeated multiplication.
  BigInt expected(1);
  for (std::uint64_t i = 0; i < e; ++i) expected = (expected * base) % m;
  EXPECT_EQ(base.mod_exp(BigInt(e), m), expected);
}

TEST(BigInt, ModInverse) {
  const BigInt m = BigInt::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
  crypto::Drbg rng("inv", 0);
  for (int i = 0; i < 10; ++i) {
    const BigInt a = random_below(m - BigInt(1), rng) + BigInt(1);
    const BigInt inv = a.mod_inverse(m);
    EXPECT_EQ((a * inv) % m, BigInt(1));
  }
  EXPECT_THROW(BigInt(4).mod_inverse(BigInt(8)), std::domain_error);
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(36)), BigInt(12));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(5)), BigInt(1));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(9)), BigInt(9));
}

TEST(Prime, KnownPrimesAndComposites) {
  crypto::Drbg rng("prime-known", 0);
  EXPECT_TRUE(is_probable_prime(BigInt(2), rng));
  EXPECT_TRUE(is_probable_prime(BigInt(65537), rng));
  EXPECT_FALSE(is_probable_prime(BigInt(1), rng));
  EXPECT_FALSE(is_probable_prime(BigInt(65536), rng));
  EXPECT_FALSE(is_probable_prime(BigInt(561), rng));   // Carmichael number
  EXPECT_FALSE(is_probable_prime(BigInt(341), rng));   // Fermat pseudoprime base 2
  // The P-256 field prime and group order are prime.
  EXPECT_TRUE(is_probable_prime(
      BigInt::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"), rng));
  EXPECT_TRUE(is_probable_prime(
      BigInt::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"), rng));
}

TEST(Prime, GeneratePrimeHasRequestedSize) {
  crypto::Drbg rng("prime-gen", 0);
  const BigInt p = generate_prime(256, rng);
  EXPECT_EQ(p.bit_length(), 256u);
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(is_probable_prime(p, rng));
}

TEST(Prime, GenerateSafePrime) {
  crypto::Drbg rng("safe-prime", 0);
  const BigInt p = generate_safe_prime(128, rng);
  EXPECT_TRUE(is_probable_prime(p, rng));
  EXPECT_TRUE(is_probable_prime((p - BigInt(1)) >> 1, rng));
}

TEST(Prime, RandomBelowIsBelow) {
  crypto::Drbg rng("below", 0);
  const BigInt bound = BigInt::from_hex("10000000000000001");
  for (int i = 0; i < 100; ++i) EXPECT_LT(random_below(bound, rng), bound);
}

}  // namespace
}  // namespace mbtls::bn
