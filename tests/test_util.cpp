#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/ct.h"
#include "util/hex.h"
#include "util/reader.h"
#include "util/writer.h"

namespace mbtls {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(hex_encode(b), "0001abff");
  EXPECT_EQ(hex_decode("0001abff"), b);
  EXPECT_EQ(hex_decode("0001ABFF"), b);
}

TEST(Hex, RejectsBadInput) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);    // bad digit
}

TEST(Bytes, ConcatAndEqual) {
  const Bytes a = to_bytes(std::string_view("ab"));
  const Bytes b = to_bytes(std::string_view("cd"));
  EXPECT_EQ(to_string(concat({a, b})), "abcd");
  EXPECT_TRUE(equal(a, a));
  EXPECT_FALSE(equal(a, b));
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, ByteView(a).first(2)));
}

TEST(Bytes, XorInto) {
  Bytes a = {0xff, 0x0f};
  const Bytes b = {0x0f, 0x0f};
  xor_into(a, b);
  EXPECT_EQ(a, (Bytes{0xf0, 0x00}));
  Bytes short_buf = {1};
  EXPECT_THROW(xor_into(short_buf, b), std::invalid_argument);
}

TEST(Bytes, BigEndianIntegers) {
  Bytes out;
  put_u16(out, 0x0102);
  put_u24(out, 0x030405);
  put_u32(out, 0x06070809);
  put_u64(out, 0x0a0b0c0d0e0f1011ULL);
  EXPECT_EQ(get_u16(out, 0), 0x0102);
  EXPECT_EQ(get_u24(out, 2), 0x030405u);
  EXPECT_EQ(get_u32(out, 5), 0x06070809u);
  EXPECT_EQ(get_u64(out, 9), 0x0a0b0c0d0e0f1011ULL);
  EXPECT_THROW(get_u32(out, out.size() - 2), std::out_of_range);
}

TEST(Reader, SequentialDecoding) {
  const Bytes data = hex_decode("010202aabb03313233");
  Reader r(data);
  EXPECT_EQ(r.u8(), 1);
  EXPECT_EQ(r.u16(), 0x0202);
  EXPECT_EQ(hex_encode(r.bytes(2)), "aabb");
  EXPECT_EQ(to_string(r.vec8()), "123");
  EXPECT_TRUE(r.empty());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Reader, ThrowsOnTruncation) {
  const Bytes data = {0x05, 0x01};  // vec8 claims 5 bytes, only 1 present
  Reader r(data);
  EXPECT_THROW(r.vec8(), DecodeError);
}

TEST(Reader, ExpectEndRejectsTrailing) {
  const Bytes data = {0x01, 0x02};
  Reader r(data);
  r.u8();
  EXPECT_THROW(r.expect_end(), DecodeError);
}

TEST(Writer, VectorsAndPrefixes) {
  Writer w;
  w.u8(7);
  {
    Writer::LengthPrefix p(w, 2);
    w.raw(to_bytes(std::string_view("abc")));
  }
  w.vec8(to_bytes(std::string_view("xy")));
  EXPECT_EQ(hex_encode(w.buffer()), "07" "0003" "616263" "02" "7879");
}

TEST(Writer, NestedLengthPrefixes) {
  Writer w;
  {
    Writer::LengthPrefix outer(w, 3);
    {
      Writer::LengthPrefix inner(w, 1);
      w.u16(0xbeef);
    }
  }
  EXPECT_EQ(hex_encode(w.buffer()), "000003" "02" "beef");
}

TEST(Reader, Vec24RoundTrip) {
  Writer w;
  w.vec24(to_bytes(std::string_view("payload")));
  Reader r(w.buffer());
  EXPECT_EQ(to_string(r.vec24()), "payload");
}

}  // namespace
}  // namespace mbtls
