// Worker-pool substrate and parallel reprotect pipeline.
//
// The load-bearing guarantee is the last group: the multi-worker pipeline's
// output is byte-for-byte identical to the serial pipeline's for every
// session and both directions. scripts/check.sh runs this binary under the
// tsan preset, so the cross-check also stands in for a data-race audit of
// the whole pool/pipeline stack.
#include <gtest/gtest.h>

#include <thread>

#include "mbtls/middlebox.h"
#include "util/workpool.h"

namespace mbtls {
namespace {

using util::SpscRing;
using util::WorkPool;

// ------------------------------------------------------------ SpscRing

TEST(SpscRing, PushPopRoundTrip) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  // Full: a failed push must not consume the value.
  int extra = 99;
  EXPECT_FALSE(ring.try_push(std::move(extra)));
  EXPECT_EQ(extra, 99);
  for (int i = 0; i < 4; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
}

TEST(SpscRing, FailedPushKeepsMoveOnlyValueIntact) {
  SpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(1)));
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(2)));
  auto held = std::make_unique<int>(3);
  EXPECT_FALSE(ring.try_push(std::move(held)));
  ASSERT_NE(held, nullptr);  // not consumed by the failed push
  EXPECT_EQ(*held, 3);
}

// ------------------------------------------------------------ WorkPool

TEST(WorkPool, StartupShutdownWithoutJobs) {
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    WorkPool<int> pool(workers, 8, [](std::size_t, int&&) {});
    EXPECT_EQ(pool.worker_count(), workers);
  }
  // workers == 0 clamps to 1 rather than constructing a dead pool.
  WorkPool<int> pool(0, 8, [](std::size_t, int&&) {});
  EXPECT_EQ(pool.worker_count(), 1u);
}

TEST(WorkPool, DestructorRunsEveryPostedJob) {
  std::atomic<int> done{0};
  {
    WorkPool<int> pool(3, 4, [&](std::size_t, int&&) {
      done.fetch_add(1, std::memory_order_relaxed);
    });
    for (int i = 0; i < 100; ++i) pool.post(static_cast<std::size_t>(i), int(i));
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(WorkPool, ShardAffinityAndPerShardFifo) {
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kShards = 16;
  constexpr int kJobsPerShard = 50;
  struct Job {
    std::size_t shard;
    int seq;
  };
  // Written only by the owning worker (sharding rule), read after drain().
  std::vector<std::vector<std::pair<std::size_t, int>>> seen(kWorkers);
  WorkPool<Job> pool(kWorkers, 8, [&](std::size_t worker, Job&& job) {
    seen[worker].emplace_back(job.shard, job.seq);
  });
  for (int seq = 0; seq < kJobsPerShard; ++seq)
    for (std::size_t shard = 0; shard < kShards; ++shard) pool.post(shard, {shard, seq});
  pool.drain();

  std::size_t total = 0;
  for (std::size_t worker = 0; worker < kWorkers; ++worker) {
    std::vector<int> next_seq(kShards, 0);
    for (const auto& [shard, seq] : seen[worker]) {
      // Every job landed on the worker its shard maps to...
      EXPECT_EQ(pool.shard_worker(shard), worker);
      // ...and jobs within one shard ran in FIFO order.
      EXPECT_EQ(seq, next_seq[shard]++);
      ++total;
    }
  }
  EXPECT_EQ(total, kShards * kJobsPerShard);
}

TEST(WorkPool, BackpressureBlocksThenCompletes) {
  // Tiny ring + slow handler: post() must hit a full ring, apply
  // backpressure, and still deliver every job exactly once.
  std::atomic<int> done{0};
  {
    WorkPool<int> pool(1, 2, [&](std::size_t, int&&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1, std::memory_order_relaxed);
    });
    int rejected = 0;
    for (int i = 0; i < 32; ++i) {
      int job = i;
      if (!pool.try_post(0, job)) {
        ++rejected;
        pool.post(0, std::move(job));  // blocking path takes over
      }
    }
    EXPECT_GT(rejected, 0);  // the ring did fill up
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(WorkPool, DrainIsACompletionBarrier) {
  std::atomic<int> done{0};
  WorkPool<int> pool(2, 8, [&](std::size_t, int&&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    done.fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < 20; ++i) pool.post(static_cast<std::size_t>(i % 2), int(i));
  pool.drain();
  EXPECT_EQ(done.load(), 20);
  EXPECT_EQ(pool.jobs_done(0) + pool.jobs_done(1), 20u);
  // Handler CPU time was attributed to the workers that ran it.
  EXPECT_GE(pool.busy_seconds(0) + pool.busy_seconds(1), 0.0);
}

// ------------------------------------------------------- Drbg ownership

TEST(DrbgThreading, ForkPerWorkerMatchesSingleThreadedDraws) {
  // The sanctioned multi-threaded discipline: fork() a child per worker,
  // rebind it on the worker thread, draw there. The sequence must equal the
  // same child drawn on one thread.
  crypto::Drbg parent_a(ByteView(reinterpret_cast<const std::uint8_t*>("seed"), 4));
  crypto::Drbg parent_b(ByteView(reinterpret_cast<const std::uint8_t*>("seed"), 4));
  crypto::Drbg child_ref = parent_a.fork("worker-0");
  const Bytes expected = child_ref.bytes(32);

  crypto::Drbg child = parent_b.fork("worker-0");
  Bytes got;
  std::thread worker([&] {
    child.rebind_owner_thread();
    got = child.bytes(32);
  });
  worker.join();
  EXPECT_EQ(got, expected);
}

// ------------------------------------------------- ReprotectPipeline

using mb::ReprotectPipeline;

struct SessionKeys {
  tls::HopKeys inbound;
  tls::HopKeys outbound;
};

constexpr std::size_t kKeyLen = 32;

std::vector<SessionKeys> make_session_keys(std::size_t n, crypto::Drbg& rng) {
  std::vector<SessionKeys> all;
  for (std::size_t i = 0; i < n; ++i)
    all.push_back({mb::generate_hop_keys(kKeyLen, rng), mb::generate_hop_keys(kKeyLen, rng)});
  return all;
}

struct Submission {
  std::size_t session;
  bool c2s;
  tls::ContentType type;
  Bytes sealed_body;
};

/// A deterministic mixed workload: per-session c2s and s2c senders emit
/// application records of varied sizes plus the occasional alert,
/// interleaved round-robin across sessions.
std::vector<Submission> make_workload(const std::vector<SessionKeys>& keys,
                                      std::size_t records_per_session) {
  std::vector<Submission> work;
  crypto::Drbg rng("workload", 7);
  std::vector<std::unique_ptr<tls::HopChannel>> c2s_senders, s2c_senders;
  for (const auto& k : keys) {
    c2s_senders.push_back(std::make_unique<tls::HopChannel>(
        tls::DirectionKeys{k.inbound.client_to_server_key, k.inbound.client_to_server_iv}, 0));
    s2c_senders.push_back(std::make_unique<tls::HopChannel>(
        tls::DirectionKeys{k.outbound.server_to_client_key, k.outbound.server_to_client_iv}, 0));
  }
  for (std::size_t r = 0; r < records_per_session; ++r) {
    for (std::size_t s = 0; s < keys.size(); ++s) {
      const bool c2s = (r + s) % 3 != 0;  // both directions, unevenly
      tls::ContentType type = tls::ContentType::kApplicationData;
      Bytes payload;
      if (r % 7 == 5) {
        type = tls::ContentType::kAlert;
        payload = {1, 0};  // warning close_notify
      } else {
        payload = rng.bytes(1 + (r * 97 + s * 31) % 1500);
      }
      auto& sender = c2s ? *c2s_senders[s] : *s2c_senders[s];
      Bytes rec = sender.seal(type, payload);
      work.push_back(
          {s, c2s, type, Bytes(rec.begin() + tls::kRecordHeaderSize, rec.end())});
    }
  }
  return work;
}

/// Run `work` through a pipeline configured with `opt` and return each
/// session's (to_server, to_client) output streams.
std::vector<std::pair<Bytes, Bytes>> run_pipeline(ReprotectPipeline::Options opt,
                                                  const std::vector<SessionKeys>& keys,
                                                  const std::vector<Submission>& work,
                                                  bool with_processor = false) {
  ReprotectPipeline pipeline(opt);
  for (const auto& k : keys) {
    mb::Middlebox::Processor processor;
    if (with_processor) {
      processor = [](bool, ByteView data) {
        Bytes out(data.begin(), data.end());
        for (auto& b : out) b ^= 0x5a;
        return out;
      };
    }
    pipeline.add_session(k.inbound, k.outbound, kKeyLen, std::move(processor));
  }
  for (const auto& sub : work) pipeline.submit(sub.session, sub.c2s, sub.type, sub.sealed_body);
  pipeline.flush();
  std::vector<std::pair<Bytes, Bytes>> out;
  for (std::size_t s = 0; s < keys.size(); ++s)
    out.emplace_back(pipeline.take_to_server(s), pipeline.take_to_client(s));
  return out;
}

TEST(ReprotectPipeline, SerialModeReprotectsAndCounts) {
  crypto::Drbg rng("pipeline-serial", 1);
  const auto keys = make_session_keys(2, rng);
  const auto work = make_workload(keys, 10);
  ReprotectPipeline::Options opt;  // workers = 0: inline
  ReprotectPipeline pipeline(opt);
  for (const auto& k : keys) pipeline.add_session(k.inbound, k.outbound, kKeyLen);
  for (const auto& sub : work) pipeline.submit(sub.session, sub.c2s, sub.type, sub.sealed_body);
  pipeline.flush();
  EXPECT_EQ(pipeline.records_reprotected(), work.size());
  EXPECT_EQ(pipeline.auth_failures(), 0u);
  EXPECT_GT(pipeline.bytes_processed(), 0u);
  EXPECT_GT(pipeline.max_worker_busy_seconds(), 0.0);
  // Output decrypts with the outbound hops' receiver channels in order.
  tls::HopChannel receiver(
      {keys[0].outbound.client_to_server_key, keys[0].outbound.client_to_server_iv}, 0);
  tls::RecordReader reader;
  reader.feed(pipeline.to_server(0));
  std::size_t opened = 0;
  while (auto rec = reader.next()) {
    ASSERT_TRUE(receiver.open(rec->type, rec->payload).has_value());
    ++opened;
  }
  std::size_t expected = 0;
  for (const auto& sub : work) expected += (sub.session == 0 && sub.c2s) ? 1 : 0;
  EXPECT_EQ(opened, expected);
}

TEST(ReprotectPipeline, ParallelMatchesSerialByteForByte) {
  crypto::Drbg rng("pipeline-xcheck", 2);
  const auto keys = make_session_keys(8, rng);
  const auto work = make_workload(keys, 40);

  ReprotectPipeline::Options serial;  // workers = 0
  const auto expected = run_pipeline(serial, keys, work);

  // Worker counts that divide the session count evenly and ones that don't
  // (uneven sharding), batch sizes that divide the workload and ones that
  // leave partial batches for flush().
  for (const std::size_t workers : {1u, 3u, 4u, 8u}) {
    for (const std::size_t batch : {1u, 7u, 32u}) {
      ReprotectPipeline::Options parallel;
      parallel.workers = workers;
      parallel.batch_records = batch;
      parallel.queue_capacity = 4;  // force backpressure too
      const auto got = run_pipeline(parallel, keys, work);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t s = 0; s < got.size(); ++s) {
        EXPECT_EQ(got[s].first, expected[s].first)
            << "to_server stream diverged, session " << s << ", workers " << workers
            << ", batch " << batch;
        EXPECT_EQ(got[s].second, expected[s].second)
            << "to_client stream diverged, session " << s << ", workers " << workers
            << ", batch " << batch;
      }
    }
  }
}

TEST(ReprotectPipeline, ParallelMatchesSerialWithProcessor) {
  crypto::Drbg rng("pipeline-proc", 3);
  const auto keys = make_session_keys(4, rng);
  const auto work = make_workload(keys, 20);
  ReprotectPipeline::Options serial;
  const auto expected = run_pipeline(serial, keys, work, /*with_processor=*/true);
  ReprotectPipeline::Options parallel;
  parallel.workers = 4;
  parallel.batch_records = 8;
  const auto got = run_pipeline(parallel, keys, work, /*with_processor=*/true);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t s = 0; s < got.size(); ++s) {
    EXPECT_EQ(got[s].first, expected[s].first);
    EXPECT_EQ(got[s].second, expected[s].second);
  }
}

TEST(ReprotectPipeline, AuthFailureDropsRecordOnlyInBothModes) {
  crypto::Drbg rng("pipeline-auth", 4);
  const auto keys = make_session_keys(2, rng);
  auto work = make_workload(keys, 12);
  // Corrupt a mid-stream record of session 0.
  for (auto& sub : work) {
    if (sub.session == 0 && sub.c2s) {
      sub.sealed_body[sub.sealed_body.size() / 2] ^= 0xff;
      break;
    }
  }
  ReprotectPipeline::Options serial;
  ReprotectPipeline pipeline_serial(serial);
  ReprotectPipeline::Options parallel;
  parallel.workers = 2;
  parallel.batch_records = 4;
  ReprotectPipeline pipeline_parallel(parallel);
  for (auto* p : {&pipeline_serial, &pipeline_parallel}) {
    for (const auto& k : keys) p->add_session(k.inbound, k.outbound, kKeyLen);
    for (const auto& sub : work) p->submit(sub.session, sub.c2s, sub.type, sub.sealed_body);
    p->flush();
  }
  // One drop each; the corrupted record desynchronizes session 0's inbound
  // c2s sequence numbers, so later c2s records of that session also fail —
  // identically in both modes.
  EXPECT_GT(pipeline_serial.auth_failures(), 0u);
  EXPECT_EQ(pipeline_serial.auth_failures(), pipeline_parallel.auth_failures());
  EXPECT_EQ(pipeline_serial.records_reprotected(), pipeline_parallel.records_reprotected());
  for (std::size_t s = 0; s < keys.size(); ++s) {
    EXPECT_EQ(pipeline_serial.to_server(s), pipeline_parallel.to_server(s));
    EXPECT_EQ(pipeline_serial.to_client(s), pipeline_parallel.to_client(s));
  }
}

TEST(ReprotectPipeline, BatchedEcallsAmortizeTransitions) {
  crypto::Drbg rng("pipeline-ecall", 5);
  const auto keys = make_session_keys(2, rng);
  const auto work = make_workload(keys, 32);

  const auto transitions_with_batch = [&](std::size_t batch) {
    sgx::Platform platform;
    sgx::Enclave& enclave = platform.launch("pipeline-test");
    ReprotectPipeline::Options opt;
    opt.workers = 2;
    opt.batch_records = batch;
    opt.enclave = &enclave;
    ReprotectPipeline pipeline(opt);
    for (const auto& k : keys) pipeline.add_session(k.inbound, k.outbound, kKeyLen);
    for (const auto& sub : work) pipeline.submit(sub.session, sub.c2s, sub.type, sub.sealed_body);
    pipeline.flush();
    EXPECT_EQ(pipeline.records_reprotected(), work.size());
    EXPECT_EQ(enclave.batched_records(), work.size());
    return enclave.transitions();
  };

  const std::uint64_t unbatched = transitions_with_batch(1);
  const std::uint64_t batched = transitions_with_batch(32);
  // One enter+leave per record vs per 32-record batch.
  EXPECT_EQ(unbatched, 2 * work.size());
  EXPECT_LE(batched, unbatched / 8);
}

}  // namespace
}  // namespace mbtls
