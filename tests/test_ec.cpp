// P-256 group law, ECDH, and ECDSA tests. Correctness is established through
// algebraic invariants (curve membership, commutativity, n*G = infinity) plus
// the standard generator coordinates.
#include <gtest/gtest.h>

#include "ec/ecdh.h"
#include "ec/ecdsa.h"
#include "ec/p256.h"
#include "util/hex.h"

namespace mbtls::ec {
namespace {

const P256& curve() { return P256::instance(); }

U256 scalar(std::uint64_t v) {
  U256 k{};
  k.w[0] = v;
  return k;
}

TEST(P256, GeneratorOnCurve) {
  EXPECT_TRUE(curve().on_curve(curve().generator()));
}

TEST(P256, GeneratorCoordinatesMatchStandard) {
  const Bytes enc = curve().encode_point(curve().generator());
  EXPECT_EQ(hex_encode(enc),
            "04"
            "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"
            "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5");
}

TEST(P256, SmallMultiplesOnCurve) {
  for (std::uint64_t k = 1; k <= 20; ++k) {
    const AffinePoint p = curve().mul_base(scalar(k));
    EXPECT_TRUE(curve().on_curve(p)) << "k=" << k;
  }
}

TEST(P256, AdditionConsistency) {
  // (k+1)G == kG + G, exercised via 2G + 3G == 5G through scalar arithmetic.
  const AffinePoint p2 = curve().mul_base(scalar(2));
  const AffinePoint p3 = curve().mul_base(scalar(3));
  const AffinePoint p5 = curve().mul_base(scalar(5));
  // mul_add computes u1*G + u2*Q; with Q = 2G and u2 = 1, u1 = 3: 3G + 2G.
  const AffinePoint sum = curve().mul_add(scalar(3), scalar(1), p2);
  EXPECT_EQ(sum.x, p5.x);
  EXPECT_EQ(sum.y, p5.y);
  EXPECT_TRUE(curve().on_curve(p3));
}

TEST(P256, OrderTimesGeneratorIsInfinity) {
  const AffinePoint p = curve().mul_base(curve().order());
  EXPECT_TRUE(p.infinity);
}

TEST(P256, ScalarMulCommutes) {
  crypto::Drbg rng("ec-commute", 0);
  const U256 a = curve().random_scalar(rng);
  const U256 b = curve().random_scalar(rng);
  const AffinePoint ag = curve().mul_base(a);
  const AffinePoint bg = curve().mul_base(b);
  const AffinePoint abg = curve().mul(b, ag);
  const AffinePoint bag = curve().mul(a, bg);
  EXPECT_EQ(abg.x, bag.x);
  EXPECT_EQ(abg.y, bag.y);
}

TEST(P256, PointCodecRoundTrip) {
  crypto::Drbg rng("ec-codec", 0);
  const AffinePoint p = curve().mul_base(curve().random_scalar(rng));
  const Bytes enc = curve().encode_point(p);
  const auto dec = curve().decode_point(enc);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->x, p.x);
  EXPECT_EQ(dec->y, p.y);
}

TEST(P256, DecodeRejectsInvalid) {
  Bytes enc = curve().encode_point(curve().generator());
  enc[40] ^= 1;  // corrupt a coordinate byte -> off curve
  EXPECT_FALSE(curve().decode_point(enc).has_value());
  EXPECT_FALSE(curve().decode_point(Bytes(64, 0)).has_value());   // wrong length
  Bytes compressed = enc;
  compressed[0] = 0x02;
  EXPECT_FALSE(curve().decode_point(compressed).has_value());     // unsupported form
}

TEST(Ecdh, SharedSecretAgrees) {
  crypto::Drbg rng_a("ecdh-a", 0);
  crypto::Drbg rng_b("ecdh-b", 0);
  const EcdhKeyPair a = ecdh_generate(rng_a);
  const EcdhKeyPair b = ecdh_generate(rng_b);
  const Bytes s1 = ecdh_shared_secret(a, b.public_point);
  const Bytes s2 = ecdh_shared_secret(b, a.public_point);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), 32u);
}

TEST(Ecdh, DistinctPeersDistinctSecrets) {
  crypto::Drbg rng("ecdh-multi", 0);
  const EcdhKeyPair a = ecdh_generate(rng);
  const EcdhKeyPair b = ecdh_generate(rng);
  const EcdhKeyPair c = ecdh_generate(rng);
  EXPECT_NE(ecdh_shared_secret(a, b.public_point), ecdh_shared_secret(a, c.public_point));
}

TEST(Ecdh, RejectsInvalidPeerPoint) {
  crypto::Drbg rng("ecdh-bad", 0);
  const EcdhKeyPair a = ecdh_generate(rng);
  Bytes bogus(65, 0);
  bogus[0] = 0x04;
  EXPECT_THROW(ecdh_shared_secret(a, bogus), std::invalid_argument);
}

TEST(Ecdsa, SignVerifyRoundTrip) {
  crypto::Drbg rng("ecdsa-rt", 0);
  const EcdsaKeyPair key = ecdsa_generate(rng);
  const auto msg = to_bytes(std::string_view("attested handshake transcript"));
  const Bytes sig = ecdsa_sign(key, crypto::HashAlgo::kSha256, msg, rng);
  EXPECT_EQ(sig.size(), 64u);
  EXPECT_TRUE(ecdsa_verify(key.public_key, crypto::HashAlgo::kSha256, msg, sig));
}

TEST(Ecdsa, VerifyRejectsWrongMessage) {
  crypto::Drbg rng("ecdsa-msg", 0);
  const EcdsaKeyPair key = ecdsa_generate(rng);
  const Bytes sig =
      ecdsa_sign(key, crypto::HashAlgo::kSha256, to_bytes(std::string_view("m1")), rng);
  EXPECT_FALSE(
      ecdsa_verify(key.public_key, crypto::HashAlgo::kSha256, to_bytes(std::string_view("m2")), sig));
}

TEST(Ecdsa, VerifyRejectsTamperedSignature) {
  crypto::Drbg rng("ecdsa-tamper", 0);
  const EcdsaKeyPair key = ecdsa_generate(rng);
  const auto msg = to_bytes(std::string_view("msg"));
  Bytes sig = ecdsa_sign(key, crypto::HashAlgo::kSha256, msg, rng);
  for (std::size_t i = 0; i < sig.size(); i += 7) {
    Bytes bad = sig;
    bad[i] ^= 1;
    EXPECT_FALSE(ecdsa_verify(key.public_key, crypto::HashAlgo::kSha256, msg, bad));
  }
}

TEST(Ecdsa, VerifyRejectsWrongKey) {
  crypto::Drbg rng("ecdsa-key", 0);
  const EcdsaKeyPair key1 = ecdsa_generate(rng);
  const EcdsaKeyPair key2 = ecdsa_generate(rng);
  const auto msg = to_bytes(std::string_view("msg"));
  const Bytes sig = ecdsa_sign(key1, crypto::HashAlgo::kSha256, msg, rng);
  EXPECT_FALSE(ecdsa_verify(key2.public_key, crypto::HashAlgo::kSha256, msg, sig));
}

TEST(Ecdsa, Sha384MessagesWork) {
  crypto::Drbg rng("ecdsa-384", 0);
  const EcdsaKeyPair key = ecdsa_generate(rng);
  const auto msg = to_bytes(std::string_view("sha-384 signed"));
  const Bytes sig = ecdsa_sign(key, crypto::HashAlgo::kSha384, msg, rng);
  EXPECT_TRUE(ecdsa_verify(key.public_key, crypto::HashAlgo::kSha384, msg, sig));
  // Cross-algorithm verification must fail.
  EXPECT_FALSE(ecdsa_verify(key.public_key, crypto::HashAlgo::kSha256, msg, sig));
}

TEST(Ecdsa, RejectsMalformedSignatures) {
  crypto::Drbg rng("ecdsa-malformed", 0);
  const EcdsaKeyPair key = ecdsa_generate(rng);
  const auto msg = to_bytes(std::string_view("msg"));
  EXPECT_FALSE(ecdsa_verify(key.public_key, crypto::HashAlgo::kSha256, msg, Bytes(63, 1)));
  EXPECT_FALSE(ecdsa_verify(key.public_key, crypto::HashAlgo::kSha256, msg, Bytes(64, 0)));  // r=s=0
}

TEST(U256, BytesRoundTrip) {
  crypto::Drbg rng("u256", 0);
  const Bytes b = rng.bytes(32);
  EXPECT_EQ(U256::from_bytes(b).to_bytes(), b);
  EXPECT_THROW(U256::from_bytes(Bytes(31, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace mbtls::ec
