// mbTLS end-to-end integration: discovery, secondary handshakes, per-hop
// keys, data re-protection, middlebox processing, legacy interop, SGX
// protection, and approval policies.
#include <gtest/gtest.h>

#include "tests/mbtls_test_util.h"

namespace mbtls::mb {
namespace {

using namespace testing;

TEST(Mbtls, NoMiddleboxesBehavesLikeTls) {
  const auto id = make_identity("plain.example");
  ClientSession client(client_options("plain.example"));
  ServerSession server(server_options(id));
  Chain chain{.client = &client, .middleboxes = {}, .server = &server};
  client.start();
  chain.pump();
  ASSERT_TRUE(client.established()) << client.error_message();
  ASSERT_TRUE(server.established()) << server.error_message();
  EXPECT_EQ(client.middleboxes().size(), 0u);

  client.send(to_bytes(std::string_view("GET /")));
  chain.pump();
  EXPECT_EQ(to_string(server.take_app_data()), "GET /");
  server.send(to_bytes(std::string_view("200 OK")));
  chain.pump();
  EXPECT_EQ(to_string(client.take_app_data()), "200 OK");
}

TEST(Mbtls, SingleClientSideMiddlebox) {
  const auto id = make_identity("origin.example");
  ClientSession client(client_options("origin.example"));
  ServerSession server(server_options(id));
  Middlebox mbox(middlebox_options("proxy.mboxes.example", Middlebox::Side::kClientSide));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();

  ASSERT_TRUE(client.established()) << client.error_message();
  ASSERT_TRUE(server.established()) << server.error_message();
  EXPECT_TRUE(mbox.joined());
  EXPECT_FALSE(mbox.relay_mode());
  ASSERT_EQ(client.middleboxes().size(), 1u);
  EXPECT_EQ(client.middleboxes()[0].certificate_cn, "proxy.mboxes.example");
  EXPECT_TRUE(client.middleboxes()[0].discovered);
  // The server never learns about client-side middleboxes.
  EXPECT_EQ(server.middleboxes().size(), 0u);

  client.send(to_bytes(std::string_view("request body")));
  chain.pump();
  EXPECT_EQ(to_string(server.take_app_data()), "request body");
  server.send(to_bytes(std::string_view("response body")));
  chain.pump();
  EXPECT_EQ(to_string(client.take_app_data()), "response body");
  EXPECT_GE(mbox.records_reprotected(), 2u);
}

TEST(Mbtls, SingleServerSideMiddlebox) {
  const auto id = make_identity("origin.example");
  ClientSession client(client_options("origin.example"));
  ServerSession server(server_options(id));
  Middlebox mbox(middlebox_options("cdn.mboxes.example", Middlebox::Side::kServerSide));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();

  ASSERT_TRUE(client.established()) << client.error_message();
  ASSERT_TRUE(server.established()) << server.error_message();
  EXPECT_TRUE(mbox.joined());
  EXPECT_EQ(server.announcements_seen(), 1u);
  ASSERT_EQ(server.middleboxes().size(), 1u);
  EXPECT_EQ(server.middleboxes()[0].certificate_cn, "cdn.mboxes.example");
  // The client never learns about server-side middleboxes.
  EXPECT_EQ(client.middleboxes().size(), 0u);

  client.send(to_bytes(std::string_view("ping")));
  chain.pump();
  EXPECT_EQ(to_string(server.take_app_data()), "ping");
  server.send(to_bytes(std::string_view("pong")));
  chain.pump();
  EXPECT_EQ(to_string(client.take_app_data()), "pong");
}

TEST(Mbtls, MultipleMiddlebloxesBothSides) {
  const auto id = make_identity("origin.example");
  ClientSession client(client_options("origin.example"));
  ServerSession server(server_options(id));
  Middlebox c1(middlebox_options("c1.example", Middlebox::Side::kClientSide));
  Middlebox c0(middlebox_options("c0.example", Middlebox::Side::kClientSide));
  Middlebox s0(middlebox_options("s0.example", Middlebox::Side::kServerSide));
  Middlebox s1(middlebox_options("s1.example", Middlebox::Side::kServerSide));
  // Path: client - c1 - c0 - s0 - s1 - server (paper Figure 4).
  Chain chain{.client = &client, .middleboxes = {&c1, &c0, &s0, &s1}, .server = &server};
  client.start();
  chain.pump();

  ASSERT_TRUE(client.established()) << client.error_message();
  ASSERT_TRUE(server.established()) << server.error_message();
  EXPECT_TRUE(c1.joined());
  EXPECT_TRUE(c0.joined());
  EXPECT_TRUE(s0.joined());
  EXPECT_TRUE(s1.joined());
  EXPECT_EQ(client.middleboxes().size(), 2u);
  EXPECT_EQ(server.middleboxes().size(), 2u);
  // Subchannel numbering: farther-from-endpoint first.
  EXPECT_EQ(c0.subchannel(), 1);  // closest to server on the client side
  EXPECT_EQ(c1.subchannel(), 2);
  EXPECT_EQ(s0.subchannel(), 1);  // closest to client on the server side
  EXPECT_EQ(s1.subchannel(), 2);

  client.send(to_bytes(std::string_view("end to end")));
  chain.pump();
  EXPECT_EQ(to_string(server.take_app_data()), "end to end");
  server.send(to_bytes(std::string_view("and back")));
  chain.pump();
  EXPECT_EQ(to_string(client.take_app_data()), "and back");
}

TEST(Mbtls, MiddleboxProcessorModifiesData) {
  const auto id = make_identity("origin.example");
  ClientSession client(client_options("origin.example"));
  ServerSession server(server_options(id));
  auto opts = middlebox_options("rewriter.example", Middlebox::Side::kClientSide);
  opts.processor = [](bool c2s, ByteView data) {
    Bytes out = to_bytes(data);
    if (c2s) append(out, to_bytes(std::string_view(" [via proxy]")));
    return out;
  };
  Middlebox mbox(std::move(opts));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();
  ASSERT_TRUE(client.established());

  client.send(to_bytes(std::string_view("GET /")));
  chain.pump();
  EXPECT_EQ(to_string(server.take_app_data()), "GET / [via proxy]");
  server.send(to_bytes(std::string_view("untouched")));
  chain.pump();
  EXPECT_EQ(to_string(client.take_app_data()), "untouched");
}

// ---------------------------------------------------------- legacy interop

TEST(MbtlsLegacy, MbtlsClientWithLegacyServer) {
  // P5: client-side middleboxes work even when the server is stock TLS 1.2.
  const auto id = make_identity("legacy-server.example");
  ClientSession client(client_options("legacy-server.example"));
  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = id.key;
  scfg.certificate_chain = id.chain;
  scfg.rng_label = "legacy-server";
  tls::Engine server(scfg);
  Middlebox mbox(middlebox_options("proxy.example", Middlebox::Side::kClientSide));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .legacy_server = &server};
  client.start();
  chain.pump();

  ASSERT_TRUE(client.established()) << client.error_message();
  ASSERT_TRUE(server.handshake_done()) << server.error_message();
  EXPECT_TRUE(mbox.joined());

  client.send(to_bytes(std::string_view("hello legacy")));
  chain.pump();
  EXPECT_EQ(to_string(server.take_plaintext()), "hello legacy");
  server.send(to_bytes(std::string_view("plain TLS says hi")));
  chain.pump();
  EXPECT_EQ(to_string(client.take_app_data()), "plain TLS says hi");
}

TEST(MbtlsLegacy, LegacyClientWithMbtlsServer) {
  // P5 mirror: server-side middleboxes join even when the client is legacy.
  const auto id = make_identity("mb-server.example");
  tls::Config ccfg;
  ccfg.is_client = true;
  ccfg.trust_anchors = {test_ca().root()};
  ccfg.server_name = "mb-server.example";
  ccfg.rng_label = "legacy-client";
  tls::Engine client(ccfg);
  ServerSession server(server_options(id));
  Middlebox mbox(middlebox_options("cdn.example", Middlebox::Side::kServerSide));
  Chain chain{.legacy_client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();

  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  ASSERT_TRUE(server.established()) << server.error_message();
  EXPECT_TRUE(mbox.joined());

  client.send(to_bytes(std::string_view("from legacy client")));
  chain.pump();
  EXPECT_EQ(to_string(server.take_app_data()), "from legacy client");
  server.send(to_bytes(std::string_view("server response")));
  chain.pump();
  EXPECT_EQ(to_string(client.take_plaintext()), "server response");
}

TEST(MbtlsLegacy, ClientSideMboxRelaysForLegacyClient) {
  // A legacy client's hello has no MiddleboxSupport extension: the on-path
  // middlebox must fall back to transparent relaying.
  const auto id = make_identity("both-legacy.example");
  tls::Config ccfg;
  ccfg.is_client = true;
  ccfg.trust_anchors = {test_ca().root()};
  ccfg.server_name = "both-legacy.example";
  ccfg.rng_label = "legacy-client2";
  tls::Engine client(ccfg);
  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = id.key;
  scfg.certificate_chain = id.chain;
  scfg.rng_label = "legacy-server2";
  tls::Engine server(scfg);
  Middlebox mbox(middlebox_options("hopeful.example", Middlebox::Side::kClientSide));
  Chain chain{.legacy_client = &client, .middleboxes = {&mbox}, .legacy_server = &server};
  client.start();
  chain.pump();

  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  EXPECT_TRUE(mbox.relay_mode());
  EXPECT_FALSE(mbox.joined());
  EXPECT_TRUE(mbox.observed_legacy_peer());

  client.send(to_bytes(std::string_view("opaque to mbox")));
  chain.pump();
  EXPECT_EQ(to_string(server.take_plaintext()), "opaque to mbox");
}

TEST(MbtlsLegacy, ServerSideMboxDemotesWhenServerIgnoresAnnouncement) {
  // Tolerant legacy server: ignores announcement + encapsulated records; the
  // middlebox must notice data flowing without keys and demote to relay.
  const auto id = make_identity("tolerant.example");
  ClientSession client(client_options("tolerant.example"));
  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = id.key;
  scfg.certificate_chain = id.chain;
  scfg.ignore_unknown_record_types = true;
  scfg.rng_label = "tolerant-server";
  tls::Engine server(scfg);
  Middlebox mbox(middlebox_options("ignored.example", Middlebox::Side::kServerSide));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .legacy_server = &server};
  client.start();
  chain.pump();
  ASSERT_TRUE(client.established()) << client.error_message();
  ASSERT_TRUE(server.handshake_done());

  client.send(to_bytes(std::string_view("flows through")));
  chain.pump();
  EXPECT_EQ(to_string(server.take_plaintext()), "flows through");
  EXPECT_TRUE(mbox.relay_mode());
  EXPECT_TRUE(mbox.observed_legacy_peer());
}

TEST(MbtlsLegacy, StrictLegacyServerAbortsAndMboxCaches) {
  // Strict legacy server: fatal alert on the announcement. The client's
  // handshake fails (it must retry); the middlebox caches the legacy fact.
  const auto id = make_identity("strict.example");
  ClientSession client(client_options("strict.example"));
  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = id.key;
  scfg.certificate_chain = id.chain;
  scfg.ignore_unknown_record_types = false;
  scfg.rng_label = "strict-server";
  tls::Engine server(scfg);
  Middlebox mbox(middlebox_options("blocked.example", Middlebox::Side::kServerSide));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .legacy_server = &server};
  client.start();
  chain.pump();
  EXPECT_TRUE(server.failed());
  EXPECT_FALSE(client.established());
  EXPECT_TRUE(mbox.observed_legacy_peer());

  // Retry with the cached knowledge: middlebox stays silent, handshake works.
  ClientSession client2(client_options("strict.example", /*seed=*/9));
  tls::Engine server2([&] {
    tls::Config cfg = scfg;
    cfg.rng_label = "strict-server-2";
    return cfg;
  }());
  auto opts = middlebox_options("blocked.example", Middlebox::Side::kServerSide);
  opts.peer_known_legacy = true;
  Middlebox mbox2(std::move(opts));
  Chain chain2{.client = &client2, .middleboxes = {&mbox2}, .legacy_server = &server2};
  client2.start();
  chain2.pump();
  EXPECT_TRUE(client2.established()) << client2.error_message();
  EXPECT_TRUE(mbox2.relay_mode());
}

// ------------------------------------------------------------ SGX & policy

TEST(MbtlsSgx, OutsourcedMiddleboxAttestsAndProtectsKeys) {
  sgx::Platform mip_platform;  // the untrusted infrastructure provider
  sgx::Enclave& enclave = mip_platform.launch("header-proxy-v1.2");
  const auto id = make_identity("origin.example");

  auto copts = client_options("origin.example");
  copts.require_middlebox_attestation = true;
  copts.expected_middlebox_measurement = sgx::measure("header-proxy-v1.2");
  ClientSession client(std::move(copts));
  ServerSession server(server_options(id));

  auto mopts = middlebox_options("proxy.cloud.example", Middlebox::Side::kClientSide);
  mopts.enclave = &enclave;
  Middlebox mbox(std::move(mopts));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();

  ASSERT_TRUE(client.established()) << client.error_message();
  ASSERT_EQ(client.middleboxes().size(), 1u);
  EXPECT_TRUE(client.middleboxes()[0].attested);
  EXPECT_EQ(client.middleboxes()[0].measurement, sgx::measure("header-proxy-v1.2"));

  client.send(to_bytes(std::string_view("secret payload")));
  chain.pump();
  EXPECT_EQ(to_string(server.take_app_data()), "secret payload");

  // P1A: the infrastructure provider cannot find any hop key in memory.
  const auto view = mip_platform.adversary_memory_view();
  bool any_plain_secret = false;
  for (const auto& region : view) any_plain_secret |= !region.encrypted;
  EXPECT_FALSE(any_plain_secret);
}

TEST(MbtlsSgx, WithoutEnclaveKeysAreExposedToInfrastructure) {
  // The contrast case: same middlebox on untrusted hardware without SGX —
  // the MIP can read hop keys straight out of RAM.
  sgx::Platform mip_platform;
  const auto id = make_identity("origin.example");
  ClientSession client(client_options("origin.example"));
  ServerSession server(server_options(id));
  auto mopts = middlebox_options("naked-proxy.example", Middlebox::Side::kClientSide);
  mopts.untrusted_store = &mip_platform.untrusted_memory();
  Middlebox mbox(std::move(mopts));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();
  ASSERT_TRUE(client.established());

  const auto key = mip_platform.untrusted_memory().get("naked-proxy.example/hop_toward_client_c2s");
  ASSERT_TRUE(key.has_value());
  EXPECT_FALSE(mip_platform.adversary_find_secret(*key).empty());
}

TEST(MbtlsSgx, AttestationRequiredButMissingFails) {
  const auto id = make_identity("origin.example");
  auto copts = client_options("origin.example");
  copts.require_middlebox_attestation = true;
  ClientSession client(std::move(copts));
  ServerSession server(server_options(id));
  Middlebox mbox(middlebox_options("no-enclave.example", Middlebox::Side::kClientSide));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();
  EXPECT_TRUE(client.failed());
}

TEST(MbtlsPolicy, ApprovalCallbackCanReject) {
  const auto id = make_identity("origin.example");
  auto copts = client_options("origin.example");
  copts.approve = [](const MiddleboxDescriptor& desc) {
    return desc.certificate_cn != "unwanted.example";
  };
  ClientSession client(std::move(copts));
  ServerSession server(server_options(id));
  Middlebox mbox(middlebox_options("unwanted.example", Middlebox::Side::kClientSide));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();
  EXPECT_TRUE(client.failed());
  EXPECT_NE(client.error_message().find("rejected by policy"), std::string::npos);
}

TEST(MbtlsPolicy, UntrustedMiddleboxCertificateRejected) {
  crypto::Drbg rogue_rng("rogue-mbox", 0);
  const auto rogue_ca =
      x509::CertificateAuthority::create("Rogue Mbox CA", x509::KeyType::kEcdsaP256, rogue_rng);
  const auto id = make_identity("origin.example");
  ClientSession client(client_options("origin.example"));
  ServerSession server(server_options(id));

  Middlebox::Options mopts;
  mopts.name = "rogue.example";
  mopts.side = Middlebox::Side::kClientSide;
  mopts.private_key = std::make_shared<x509::PrivateKey>(
      x509::PrivateKey::generate(x509::KeyType::kEcdsaP256, rogue_rng));
  x509::CertRequest req;
  req.subject_cn = "rogue.example";
  req.not_after = 2524607999;
  req.key = mopts.private_key->public_key();
  mopts.certificate_chain = {rogue_ca.issue(req, rogue_rng)};
  Middlebox mbox(std::move(mopts));

  Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();
  EXPECT_TRUE(client.failed());
}

TEST(Mbtls, LargeTransferThroughMiddleboxes) {
  const auto id = make_identity("origin.example");
  ClientSession client(client_options("origin.example"));
  ServerSession server(server_options(id));
  Middlebox c0(middlebox_options("c0.example", Middlebox::Side::kClientSide));
  Middlebox s0(middlebox_options("s0.example", Middlebox::Side::kServerSide));
  Chain chain{.client = &client, .middleboxes = {&c0, &s0}, .server = &server};
  client.start();
  chain.pump();
  ASSERT_TRUE(client.established());

  crypto::Drbg rng("mb-large", 0);
  const Bytes blob = rng.bytes(200'000);
  client.send(blob);
  chain.pump();
  EXPECT_EQ(server.take_app_data(), blob);
  const Bytes blob2 = rng.bytes(150'000);
  server.send(blob2);
  chain.pump();
  EXPECT_EQ(client.take_app_data(), blob2);
}

TEST(Mbtls, CloseNotifyPropagates) {
  const auto id = make_identity("origin.example");
  ClientSession client(client_options("origin.example"));
  ServerSession server(server_options(id));
  Middlebox mbox(middlebox_options("mid.example", Middlebox::Side::kClientSide));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();
  ASSERT_TRUE(client.established());
  client.close();
  chain.pump();
  EXPECT_EQ(server.status(), SessionStatus::kClosed);
  // The middlebox recognized the shutdown on the reprotect path rather than
  // treating the alert as opaque bytes.
  EXPECT_TRUE(mbox.saw_close_notify_from_client());
  EXPECT_FALSE(mbox.saw_close_notify_from_server());
}

TEST(Mbtls, CloseNotifyPropagatesServerToClient) {
  const auto id = make_identity("origin.example");
  ClientSession client(client_options("origin.example"));
  ServerSession server(server_options(id));
  Middlebox mbox(middlebox_options("s0.example", Middlebox::Side::kServerSide));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();
  ASSERT_TRUE(client.established());
  server.close();
  chain.pump();
  EXPECT_EQ(client.status(), SessionStatus::kClosed);
  EXPECT_TRUE(mbox.saw_close_notify_from_server());
  EXPECT_FALSE(mbox.saw_close_notify_from_client());
}

TEST(Mbtls, CloseNotifyTraversesEveryHop) {
  // Clean shutdown must be re-protected hop by hop through a full path —
  // every middlebox observes it, and the far endpoint reaches kClosed.
  const auto id = make_identity("origin.example");
  ClientSession client(client_options("origin.example"));
  ServerSession server(server_options(id));
  Middlebox c0(middlebox_options("c0.example", Middlebox::Side::kClientSide));
  Middlebox s0(middlebox_options("s0.example", Middlebox::Side::kServerSide));
  Chain chain{.client = &client, .middleboxes = {&c0, &s0}, .server = &server};
  client.start();
  chain.pump();
  ASSERT_TRUE(client.established());
  ASSERT_TRUE(c0.joined());
  ASSERT_TRUE(s0.joined());
  client.close();
  chain.pump();
  EXPECT_EQ(server.status(), SessionStatus::kClosed);
  EXPECT_TRUE(c0.saw_close_notify_from_client());
  EXPECT_TRUE(s0.saw_close_notify_from_client());
}

}  // namespace
}  // namespace mbtls::mb
