// HMAC known answers from RFC 4231 and HKDF known answers from RFC 5869.
#include <gtest/gtest.h>

#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "util/hex.h"

namespace mbtls::crypto {
namespace {

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto data = to_bytes(std::string_view("Hi There"));
  EXPECT_EQ(hex_encode(hmac(HashAlgo::kSha256, key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  EXPECT_EQ(hex_encode(hmac(HashAlgo::kSha384, key, data)),
            "afd03944d84895626b0825f4ab46907f15f9dadbe4101ec682aa034c7cebc59c"
            "faea9ea9076ede7f4af152e8b2fa9cb6");
}

// RFC 4231 test case 2: key and data shorter than block.
TEST(Hmac, Rfc4231Case2) {
  const auto key = to_bytes(std::string_view("Jefe"));
  const auto data = to_bytes(std::string_view("what do ya want for nothing?"));
  EXPECT_EQ(hex_encode(hmac(HashAlgo::kSha256, key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 0xaa * 20 key, 0xdd * 50 data.
TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hex_encode(hmac(HashAlgo::kSha256, key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than block size (131 bytes of 0xaa).
TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const auto data = to_bytes(std::string_view("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(hex_encode(hmac(HashAlgo::kSha256, key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, StreamingMatchesOneShot) {
  const Bytes key(64, 0x42);
  const auto data = to_bytes(std::string_view("streaming hmac message body"));
  Hmac h(HashAlgo::kSha384, key);
  h.update(ByteView(data).first(5));
  h.update(ByteView(data).subspan(5));
  EXPECT_EQ(h.finish(), hmac(HashAlgo::kSha384, key, data));
}

// RFC 5869 test case 1 (SHA-256).
TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = hex_decode("000102030405060708090a0b0c");
  const Bytes info = hex_decode("f0f1f2f3f4f5f6f7f8f9");
  const Bytes prk = hkdf_extract(HashAlgo::kSha256, salt, ikm);
  EXPECT_EQ(hex_encode(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  const Bytes okm = hkdf_expand(HashAlgo::kSha256, prk, info, 42);
  EXPECT_EQ(hex_encode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 test case 3: zero-length salt and info.
TEST(Hkdf, Rfc5869Case3) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf(HashAlgo::kSha256, {}, ikm, {}, 42);
  EXPECT_EQ(hex_encode(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, OutputLengthLimit) {
  const Bytes prk(32, 1);
  EXPECT_NO_THROW(hkdf_expand(HashAlgo::kSha256, prk, {}, 255 * 32));
  EXPECT_THROW(hkdf_expand(HashAlgo::kSha256, prk, {}, 255 * 32 + 1), std::length_error);
}

TEST(Hkdf, DistinctInfoGivesDistinctKeys) {
  const Bytes ikm(32, 7);
  const Bytes a = hkdf(HashAlgo::kSha256, {}, ikm, to_bytes(std::string_view("a")), 32);
  const Bytes b = hkdf(HashAlgo::kSha256, {}, ikm, to_bytes(std::string_view("b")), 32);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mbtls::crypto
