// Robustness / property hardening across modules: parser fuzzing (no
// crashes on arbitrary input), algebraic cross-checks of the arithmetic
// fast paths, and adversarial reordering across two middleboxes.
#include <gtest/gtest.h>

#include "bignum/bignum.h"
#include "bignum/prime.h"
#include "http/http.h"
#include "tests/mbtls_test_util.h"
#include "x509/certificate.h"

namespace mbtls {
namespace {

TEST(Hardening, CertificateParserSurvivesRandomDer) {
  crypto::Drbg rng("x509-fuzz", 0);
  int parsed = 0;
  for (int i = 0; i < 500; ++i) {
    Bytes junk = rng.bytes(rng.uniform(200) + 1);
    if (i % 3 == 0) junk[0] = 0x30;  // make it look like a SEQUENCE
    try {
      (void)x509::Certificate::parse(junk);
      ++parsed;  // vanishingly unlikely, but not an error per se
    } catch (const DecodeError&) {
    } catch (const std::out_of_range&) {
    }
  }
  EXPECT_EQ(parsed, 0);
}

TEST(Hardening, MutatedCertificateNeverVerifies) {
  // Take a real certificate, mutate one byte at every offset: either the
  // parse fails or the signature check fails. No mutation may verify.
  crypto::Drbg rng("x509-mut", 0);
  const auto ca = x509::CertificateAuthority::create("Mut CA", x509::KeyType::kEcdsaP256, rng);
  const auto key = x509::PrivateKey::generate(x509::KeyType::kEcdsaP256, rng);
  x509::CertRequest req;
  req.subject_cn = "victim.example";
  req.not_after = 2524607999;
  req.key = key.public_key();
  const auto cert = ca.issue(req, rng);
  const Bytes der = to_bytes(cert.der());
  int verified_mutants = 0;
  for (std::size_t at = 0; at < der.size(); ++at) {
    Bytes mutated = der;
    mutated[at] ^= 0x01;
    try {
      const auto parsed = x509::Certificate::parse(mutated);
      if (parsed.verify_signature(ca.root().info().key)) ++verified_mutants;
    } catch (const DecodeError&) {
    } catch (const std::out_of_range&) {
    } catch (const std::invalid_argument&) {
    }
  }
  EXPECT_EQ(verified_mutants, 0);
}

TEST(Hardening, MontgomeryModexpMatchesNaiveOnRandomInputs) {
  crypto::Drbg rng("mont-cross", 0);
  for (int trial = 0; trial < 20; ++trial) {
    // Odd modulus (Montgomery path) vs naive square-and-multiply.
    bn::BigInt m = bn::random_bits(192, rng);
    if (!m.is_odd()) m = m + bn::BigInt(1);
    const bn::BigInt base = bn::random_bits(150, rng);
    const std::uint64_t e = rng.uniform(64) + 1;
    bn::BigInt naive(1);
    for (std::uint64_t i = 0; i < e; ++i) naive = (naive * base) % m;
    EXPECT_EQ(base.mod_exp(bn::BigInt(e), m), naive) << "trial " << trial;
  }
}

TEST(Hardening, EcScalarMulMatchesAdditionChains) {
  // k*G computed by double-and-add must equal (k-1)*G + G for random k.
  const auto& curve = ec::P256::instance();
  crypto::Drbg rng("ec-chain", 0);
  for (int trial = 0; trial < 5; ++trial) {
    ec::U256 k = curve.random_scalar(rng);
    // Derive k-1 (k is nonzero).
    ec::U256 k_minus_1 = k;
    for (int i = 0; i < 4; ++i) {
      if (k_minus_1.w[static_cast<std::size_t>(i)]-- != 0) break;
    }
    const auto kg = curve.mul_base(k);
    const auto sum = curve.mul_add(k_minus_1, ec::U256{{1, 0, 0, 0}}, curve.generator());
    EXPECT_EQ(sum.x, kg.x) << "trial " << trial;
    EXPECT_EQ(sum.y, kg.y);
  }
}

TEST(Hardening, HttpParserSurvivesRandomBytes) {
  crypto::Drbg rng("http-fuzz", 0);
  http::RequestParser rp;
  http::ResponseParser sp;
  for (int i = 0; i < 200; ++i) {
    const Bytes junk = rng.bytes(rng.uniform(400));
    (void)rp.feed(junk);
    (void)sp.feed(junk);
  }
  SUCCEED();
}

TEST(Hardening, QuoteDecoderSurvivesRandomBytes) {
  crypto::Drbg rng("quote-fuzz", 0);
  for (int i = 0; i < 300; ++i) {
    (void)sgx::Enclave::QuoteData::decode(rng.bytes(rng.uniform(150)));
  }
  SUCCEED();
}

TEST(Hardening, ReorderedMiddleboxesDetected) {
  // P4 again, but the *reorder* variant: with two client-side middleboxes
  // A (adjacent to client) and B, an attacker delivers the client's record
  // directly to B (as if A had already processed it). B must reject it —
  // its inbound hop key is the A-B key, not the client-A key.
  using namespace mb::testing;
  const auto id = make_identity("reorder.example");
  mb::ClientSession client(client_options("reorder.example"));
  mb::ServerSession server(server_options(id));
  mb::Middlebox a(middlebox_options("a.example", mb::Middlebox::Side::kClientSide));
  mb::Middlebox b(middlebox_options("b.example", mb::Middlebox::Side::kClientSide));
  Chain chain{.client = &client, .middleboxes = {&a, &b}, .server = &server};
  client.start();
  chain.pump(400);
  ASSERT_TRUE(client.established()) << client.error_message();

  client.send(to_bytes(std::string_view("must visit A first")));
  const Bytes record = client.take_output();
  const auto before = b.auth_failures();
  b.feed_from_client(record);  // skipping A
  EXPECT_EQ(b.auth_failures(), before + 1);
  EXPECT_TRUE(b.take_to_server().empty());
}

TEST(Hardening, SessionCacheClearAndSize) {
  tls::SessionCache cache;
  tls::SessionState s;
  s.session_id = Bytes(32, 1);
  cache.store_by_id(s);
  cache.store_by_peer("host", s);
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup_by_id(s.session_id).has_value());
}

}  // namespace
}  // namespace mbtls
