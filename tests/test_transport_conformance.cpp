// Backend conformance: the same mbTLS scenarios — full handshake with
// bidirectional data, close_notify teardown, handshake-deadline expiry, and
// legacy-client demotion to relay — run unchanged against both transport
// backends (discrete-event simulator and posix epoll loop over 127.0.0.1).
// Everything above the net::Transport seam is byte-identical code; only the
// rig differs, which is what keeps the seam honest.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "mbtls/cache.h"
#include "mbtls/transport.h"
#include "net/posix/epoll_loop.h"
#include "tests/tls_test_util.h"

namespace mbtls::mb {
namespace {

using namespace net;
using tls::testing::make_identity;
using tls::testing::test_ca;

// Each rig provides three Transports (client / middlebox / server machine),
// endpoint construction, and settle(): drive the backend until `done()`
// holds or the budget runs out, returning done()'s final value.

struct SimRig {
  Simulator sim;
  Network network{sim};
  NodeId nc, nm, ns;
  std::unique_ptr<Host> hc, hm, hs;

  SimRig() {
    nc = network.add_node("client");
    nm = network.add_node("mbox");
    ns = network.add_node("server");
    network.add_link(nc, nm, {.propagation = 2 * kMillisecond});
    network.add_link(nm, ns, {.propagation = kMillisecond});
    hc = std::make_unique<Host>(network, nc);
    hm = std::make_unique<Host>(network, nm);
    hs = std::make_unique<Host>(network, ns);
  }

  Transport& client() { return *hc; }
  Transport& mbox() { return *hm; }
  Transport& server() { return *hs; }
  Port listen_port(Port suggested) const { return suggested; }
  Endpoint mbox_endpoint(Port port) const { return {nm, port, ""}; }
  Endpoint server_endpoint(Port port) const { return {ns, port, ""}; }

  bool settle(const std::function<bool()>& done) {
    sim.run();
    return done();
  }
};

struct PosixRig {
  net::posix::EpollLoop lc, lm, ls;

  Transport& client() { return lc; }
  Transport& mbox() { return lm; }
  Transport& server() { return ls; }
  Port listen_port(Port) const { return 0; }  // kernel-chosen ephemeral
  Endpoint mbox_endpoint(Port port) const { return {0, port, "127.0.0.1"}; }
  Endpoint server_endpoint(Port port) const { return {0, port, "127.0.0.1"}; }

  bool settle(const std::function<bool()>& done) {
    // Single-threaded interleaving: one poll round per loop, re-checking the
    // predicate between rounds. ~1 ms of epoll_wait per idle loop per round
    // bounds the budget at a few wall-clock seconds.
    for (int round = 0; round < 2000; ++round) {
      if (done()) return true;
      lc.poll_once(kMillisecond);
      lm.poll_once(kMillisecond);
      ls.poll_once(kMillisecond);
    }
    return done();
  }
};

struct Parties {
  std::unique_ptr<ClientSession> client;
  std::unique_ptr<ServerSession> server;
  std::unique_ptr<Middlebox> mbox;
  std::unique_ptr<SocketBinding<ClientSession>> client_binding;
  std::unique_ptr<SocketBinding<ServerSession>> server_binding;
  std::unique_ptr<MiddleboxBinding> mbox_binding;
  Stream* client_stream = nullptr;
  Stream* server_stream = nullptr;
};

/// Resumption state that outlives one rig: the sharded control-plane caches
/// (the tentpole classes, driven here through the seam over both backends).
/// ID-based resumption keeps every party — middlebox included — on the
/// abbreviated path; the ticket/middlebox mixed mode is pinned separately
/// in test_mbtls_resumption.
struct ResumptionState {
  ShardedSessionCache client_cache{{.shards = 2, .capacity_per_shard = 8}};
  ShardedSessionCache server_cache{{.shards = 2, .capacity_per_shard = 8}};
  ShardedSessionCache mbox_cache{{.shards = 2, .capacity_per_shard = 8}};
};

/// Client ↔ middlebox ↔ server across the rig's three transports, via the
/// seam API only (listen_stream/dial/Endpoint — no backend types).
template <typename Rig>
std::unique_ptr<Parties> wire(Rig& rig, std::uint64_t seed,
                              ResumptionState* resume = nullptr) {
  const auto server_id = make_identity("conf.example");
  const auto mbox_id = make_identity("confproxy.example");

  auto p = std::make_unique<Parties>();
  ClientSession::Options copts;
  copts.tls.trust_anchors = {test_ca().root()};
  copts.tls.server_name = "conf.example";
  copts.tls.rng_seed = seed;
  if (resume) {
    copts.tls.session_cache = &resume->client_cache;
    copts.tls.offer_resumption = true;
  }
  p->client = std::make_unique<ClientSession>(std::move(copts));
  ServerSession::Options sopts;
  sopts.tls.private_key = server_id.key;
  sopts.tls.certificate_chain = server_id.chain;
  sopts.tls.rng_seed = seed + 1;
  if (resume) sopts.tls.session_cache = &resume->server_cache;
  p->server = std::make_unique<ServerSession>(std::move(sopts));
  Middlebox::Options mopts;
  mopts.name = "confproxy.example";
  mopts.side = Middlebox::Side::kClientSide;
  mopts.private_key = mbox_id.key;
  mopts.certificate_chain = mbox_id.chain;
  if (resume) mopts.session_cache = &resume->mbox_cache;
  p->mbox = std::make_unique<Middlebox>(std::move(mopts));

  const Port sport = rig.server().listen_stream(rig.listen_port(443), [p = p.get()](Stream& s) {
    p->server_stream = &s;
    p->server_binding = std::make_unique<SocketBinding<ServerSession>>(*p->server, s);
  });
  const Port mport = rig.mbox().listen_stream(
      rig.listen_port(444), [p = p.get(), &rig, sport](Stream& down) {
        Stream& up = rig.mbox().dial(rig.server_endpoint(sport));
        p->mbox_binding = std::make_unique<MiddleboxBinding>(*p->mbox, down, up);
      });
  p->client_stream = &rig.client().dial(rig.mbox_endpoint(mport));
  p->client_stream->on_connect = [p = p.get()] { p->client->start(); };
  p->client_binding =
      std::make_unique<SocketBinding<ClientSession>>(*p->client, *p->client_stream);
  return p;
}

template <typename Rig>
class TransportConformance : public ::testing::Test {};

using Backends = ::testing::Types<SimRig, PosixRig>;

class BackendNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    return std::is_same_v<T, SimRig> ? "Simulator" : "PosixEpoll";
  }
};

TYPED_TEST_SUITE(TransportConformance, Backends, BackendNames);

TYPED_TEST(TransportConformance, FullHandshakeAndBidirectionalData) {
  TypeParam rig;
  auto p = wire(rig, 500);
  ASSERT_TRUE(rig.settle([&] {
    return p->client->established() && p->server->established() && p->mbox->joined();
  })) << "client: " << p->client->error_message()
      << " server: " << p->server->error_message();

  // Byte-identical payloads both directions, larger than one TCP segment so
  // real-socket chunking is exercised.
  crypto::Drbg rng("conformance-data", 42);
  const Bytes up_blob = rng.bytes(64 * 1024);
  const Bytes down_blob = rng.bytes(48 * 1024);
  p->client->send(up_blob);
  p->client_binding->flush();
  Bytes server_got;
  ASSERT_TRUE(rig.settle([&] {
    append(server_got, p->server->take_app_data());
    return server_got.size() >= up_blob.size();
  }));
  EXPECT_EQ(server_got, up_blob);

  p->server->send(down_blob);
  p->server_binding->flush();
  Bytes client_got;
  ASSERT_TRUE(rig.settle([&] {
    append(client_got, p->client->take_app_data());
    return client_got.size() >= down_blob.size();
  }));
  EXPECT_EQ(client_got, down_blob);
}

TYPED_TEST(TransportConformance, FullThenResumedHandshake) {
  // Connection 1 on a fresh rig: full handshakes everywhere, the sharded
  // control-plane caches populate. Connection 2 on a second rig — new
  // sockets/ports, same caches — must come up abbreviated at every party
  // and still move data byte-exact.
  ResumptionState resume;
  {
    TypeParam rig;
    auto p = wire(rig, 800, &resume);
    ASSERT_TRUE(rig.settle([&] {
      return p->client->established() && p->server->established() && p->mbox->joined();
    })) << "client: " << p->client->error_message()
        << " server: " << p->server->error_message();
    EXPECT_FALSE(p->client->primary().resumed());
  }
  EXPECT_GT(resume.client_cache.size(), 0u);
  EXPECT_GT(resume.mbox_cache.size(), 0u);

  TypeParam rig;
  auto p = wire(rig, 810, &resume);
  ASSERT_TRUE(rig.settle([&] {
    return p->client->established() && p->server->established() && p->mbox->joined();
  })) << "client: " << p->client->error_message()
      << " server: " << p->server->error_message();
  EXPECT_TRUE(p->client->primary().resumed());
  EXPECT_TRUE(p->server->primary().resumed());
  EXPECT_TRUE(p->mbox->resumed());

  crypto::Drbg rng("conformance-resumed-data", 81);
  const Bytes blob = rng.bytes(32 * 1024);
  p->client->send(blob);
  p->client_binding->flush();
  Bytes got;
  ASSERT_TRUE(rig.settle([&] {
    append(got, p->server->take_app_data());
    return got.size() >= blob.size();
  }));
  EXPECT_EQ(got, blob);
}

TYPED_TEST(TransportConformance, CloseNotifyTeardown) {
  TypeParam rig;
  auto p = wire(rig, 600);
  ASSERT_TRUE(rig.settle([&] {
    return p->client->established() && p->server->established();
  })) << p->client->error_message();

  // close_notify is one-directional and one-shot: the closer emits the alert
  // and goes kClosed; the peer observes kClosed on feed with no
  // auto-response. The application then tears down TCP.
  p->client->close();
  p->client_binding->flush();
  ASSERT_TRUE(rig.settle([&] { return p->server->status() == SessionStatus::kClosed; }));
  EXPECT_EQ(p->client->status(), SessionStatus::kClosed);
  EXPECT_FALSE(p->client->failed());
  EXPECT_FALSE(p->server->failed());

  p->client_stream->close();
  ASSERT_TRUE(rig.settle([&] {
    return p->client_stream->closed() && p->server_stream != nullptr &&
           p->server_stream->closed();
  }));
  // Clean teardown end to end: no error on either stream, no failed session.
  EXPECT_EQ(p->client_stream->error(), SocketError::kNone);
  EXPECT_EQ(p->server_stream->error(), SocketError::kNone);
}

TYPED_TEST(TransportConformance, HandshakeDeadlineExpires) {
  // The middlebox machine accepts TCP and then sits on the bytes forever; the
  // client's deadline — armed through the seam's Scheduler, so virtual time
  // on the simulator and the timer wheel on the epoll loop — must fail the
  // session and tear the transport down on both backends.
  TypeParam rig;
  const Port mport = rig.mbox().listen_stream(rig.listen_port(444), [](Stream&) {});

  ClientSession::Options copts;
  copts.tls.trust_anchors = {test_ca().root()};
  copts.tls.server_name = "conf.example";
  copts.tls.rng_seed = 700;
  ClientSession client(std::move(copts));
  Stream& stream = rig.client().dial(rig.mbox_endpoint(mport));
  stream.on_connect = [&] { client.start(); };
  SocketBinding<ClientSession> binding(client, stream);
  binding.arm_handshake_deadline(rig.client().scheduler(), 100 * kMillisecond);

  ASSERT_TRUE(rig.settle([&] { return client.failed() && stream.closed(); }));
  EXPECT_FALSE(client.established());
  EXPECT_GE(rig.client().scheduler().now(), 100 * kMillisecond);
}

TYPED_TEST(TransportConformance, LegacyClientDemotesToRelay) {
  // A plain-TLS client that never announces mbTLS: the middlebox must detect
  // the legacy peer, demote itself to a transparent relay, and pass the
  // end-to-end handshake and data through byte-intact.
  TypeParam rig;
  const auto server_id = make_identity("legacyconf.example");
  const auto mbox_id = make_identity("confproxy.example");

  tls::Config ccfg;
  ccfg.is_client = true;
  ccfg.trust_anchors = {test_ca().root()};
  ccfg.server_name = "legacyconf.example";
  tls::Engine client(ccfg);
  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = server_id.key;
  scfg.certificate_chain = server_id.chain;
  tls::Engine server(scfg);
  Middlebox::Options mopts;
  mopts.name = "confproxy.example";
  mopts.side = Middlebox::Side::kClientSide;
  mopts.private_key = mbox_id.key;
  mopts.certificate_chain = mbox_id.chain;
  Middlebox mbox(std::move(mopts));

  std::unique_ptr<SocketBinding<tls::Engine>> server_binding;
  std::unique_ptr<MiddleboxBinding> mbox_binding;
  const Port sport = rig.server().listen_stream(rig.listen_port(443), [&](Stream& s) {
    server_binding = std::make_unique<SocketBinding<tls::Engine>>(server, s);
  });
  const Port mport = rig.mbox().listen_stream(rig.listen_port(444), [&](Stream& down) {
    Stream& up = rig.mbox().dial(rig.server_endpoint(sport));
    mbox_binding = std::make_unique<MiddleboxBinding>(mbox, down, up);
  });
  Stream& client_stream = rig.client().dial(rig.mbox_endpoint(mport));
  client_stream.on_connect = [&] { client.start(); };
  SocketBinding<tls::Engine> client_binding(client, client_stream);

  ASSERT_TRUE(rig.settle([&] { return client.handshake_done() && server.handshake_done(); }))
      << client.error_message();
  EXPECT_TRUE(mbox.relay_mode());
  EXPECT_TRUE(mbox.observed_legacy_peer());

  client.send(to_bytes(std::string_view("legacy bytes through a demoted relay")));
  client_binding.flush();
  Bytes got;
  ASSERT_TRUE(rig.settle([&] {
    append(got, server.take_plaintext());
    return got.size() >= 36;
  }));
  EXPECT_EQ(to_string(got), "legacy bytes through a demoted relay");
}

}  // namespace
}  // namespace mbtls::mb
