// mbTLS session resumption (§3.5): the primary handshake and every
// secondary handshake are replaced by abbreviated handshakes. Middleboxes
// key their cached secondary-session state by the *primary* session ID.
#include <gtest/gtest.h>

#include "tests/mbtls_test_util.h"

namespace mbtls::mb {
namespace {

using namespace testing;

struct ResumptionRig {
  tls::SessionCache client_cache, server_cache, mbox_cache;
  tls::testing::ServerIdentity server_id = make_identity("resume.example");
  tls::testing::ServerIdentity mbox_id = make_identity("mbox.resume.example");

  ClientSession::Options client_opts(std::uint64_t seed) {
    auto opts = client_options("resume.example", seed);
    opts.tls.session_cache = &client_cache;
    opts.tls.offer_resumption = true;
    return opts;
  }
  ServerSession::Options server_opts(std::uint64_t seed) {
    auto opts = server_options(server_id, seed);
    opts.tls.session_cache = &server_cache;
    return opts;
  }
  Middlebox::Options mbox_opts(Middlebox::Side side) {
    Middlebox::Options opts;
    opts.name = "mbox.resume.example";
    opts.side = side;
    opts.private_key = mbox_id.key;
    opts.certificate_chain = mbox_id.chain;
    opts.session_cache = &mbox_cache;
    return opts;
  }
};

TEST(MbtlsResumption, ClientSideMiddleboxResumes) {
  ResumptionRig rig;

  // Connection 1: full handshakes everywhere, caches populate.
  {
    ClientSession client(rig.client_opts(1));
    ServerSession server(rig.server_opts(2));
    Middlebox mbox(rig.mbox_opts(Middlebox::Side::kClientSide));
    Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
    client.start();
    chain.pump();
    ASSERT_TRUE(client.established()) << client.error_message();
    ASSERT_TRUE(mbox.joined());
    EXPECT_FALSE(client.primary().resumed());
    EXPECT_FALSE(mbox.resumed());
  }
  ASSERT_GT(rig.mbox_cache.size(), 0u);

  // Connection 2: primary and secondary handshakes are all abbreviated.
  {
    ClientSession client(rig.client_opts(11));
    ServerSession server(rig.server_opts(12));
    Middlebox mbox(rig.mbox_opts(Middlebox::Side::kClientSide));
    Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
    client.start();
    chain.pump();
    ASSERT_TRUE(client.established()) << client.error_message();
    ASSERT_TRUE(server.established()) << server.error_message();
    ASSERT_TRUE(mbox.joined());
    EXPECT_TRUE(client.primary().resumed());
    EXPECT_TRUE(server.primary().resumed());
    EXPECT_TRUE(mbox.resumed());

    // Fresh per-hop keys were distributed; data flows.
    client.send(to_bytes(std::string_view("resumed request")));
    chain.pump();
    EXPECT_EQ(to_string(server.take_app_data()), "resumed request");
    server.send(to_bytes(std::string_view("resumed response")));
    chain.pump();
    EXPECT_EQ(to_string(client.take_app_data()), "resumed response");
  }
}

TEST(MbtlsResumption, ServerSideMiddleboxResumes) {
  ResumptionRig rig;
  {
    ClientSession client(rig.client_opts(21));
    ServerSession server(rig.server_opts(22));
    Middlebox mbox(rig.mbox_opts(Middlebox::Side::kServerSide));
    Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
    client.start();
    chain.pump();
    ASSERT_TRUE(client.established()) << client.error_message();
    ASSERT_TRUE(mbox.joined());
  }
  {
    ClientSession client(rig.client_opts(31));
    ServerSession server(rig.server_opts(32));
    Middlebox mbox(rig.mbox_opts(Middlebox::Side::kServerSide));
    Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
    client.start();
    chain.pump();
    ASSERT_TRUE(client.established()) << client.error_message();
    ASSERT_TRUE(server.established()) << server.error_message();
    ASSERT_TRUE(mbox.joined());
    EXPECT_TRUE(client.primary().resumed());
    EXPECT_TRUE(mbox.resumed());

    client.send(to_bytes(std::string_view("hello again")));
    chain.pump();
    EXPECT_EQ(to_string(server.take_app_data()), "hello again");
  }
}

TEST(MbtlsResumption, AttestedMiddleboxNeedsNoFreshQuoteOnResumption) {
  // §3.5: "A new attestation is not required, because only the enclave
  // knows the key needed to decrypt the session ticket."
  ResumptionRig rig;
  sgx::Platform platform;
  sgx::Enclave& enclave = platform.launch("resumable-proxy-v1");

  auto client_opts = [&](std::uint64_t seed) {
    auto opts = rig.client_opts(seed);
    opts.require_middlebox_attestation = true;
    opts.expected_middlebox_measurement = sgx::measure("resumable-proxy-v1");
    // Resumed secondaries carry no fresh quote; possession of the cached
    // master secret (sealed in the enclave) is the continuity proof.
    opts.approve = [](const MiddleboxDescriptor&) { return true; };
    return opts;
  };
  auto mbox_opts = [&] {
    auto opts = rig.mbox_opts(Middlebox::Side::kClientSide);
    opts.enclave = &enclave;
    return opts;
  };

  std::uint64_t attested_quotes = 0;
  {
    ClientSession client(client_opts(41));
    ServerSession server(rig.server_opts(42));
    Middlebox mbox(mbox_opts());
    Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
    client.start();
    chain.pump();
    ASSERT_TRUE(client.established()) << client.error_message();
    EXPECT_TRUE(client.middleboxes()[0].attested);
    attested_quotes = enclave.transitions();
  }
  {
    ClientSession client(client_opts(51));
    ServerSession server(rig.server_opts(52));
    Middlebox mbox(mbox_opts());
    Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
    client.start();
    chain.pump();
    ASSERT_TRUE(client.established()) << client.error_message();
    EXPECT_TRUE(mbox.resumed());
    // No new quote was generated for the resumed handshake.
    EXPECT_FALSE(client.middleboxes()[0].attested);
    (void)attested_quotes;
  }
}

TEST(MbtlsResumption, UnknownSessionIdFallsBackToFullHandshake) {
  ResumptionRig rig;
  {
    ClientSession client(rig.client_opts(61));
    ServerSession server(rig.server_opts(62));
    Middlebox mbox(rig.mbox_opts(Middlebox::Side::kClientSide));
    Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
    client.start();
    chain.pump();
    ASSERT_TRUE(client.established());
  }
  // The middlebox lost its cache (e.g. a different instance serves the
  // retry); its sub-handshake falls back to a full handshake even though
  // the primary session resumes.
  rig.mbox_cache.clear();
  {
    ClientSession client(rig.client_opts(71));
    ServerSession server(rig.server_opts(72));
    Middlebox mbox(rig.mbox_opts(Middlebox::Side::kClientSide));
    Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
    client.start();
    chain.pump();
    ASSERT_TRUE(client.established()) << client.error_message();
    EXPECT_TRUE(client.primary().resumed());
    EXPECT_FALSE(mbox.resumed());
    EXPECT_TRUE(mbox.joined());

    client.send(to_bytes(std::string_view("mixed-mode data")));
    chain.pump();
    EXPECT_EQ(to_string(server.take_app_data()), "mixed-mode data");
  }
}

TEST(MbtlsResumption, ResumptionIsCheaperEndToEnd) {
  // Sanity check on the performance claim: count bytes on the wire.
  ResumptionRig rig;
  auto run = [&](std::uint64_t seed) {
    ClientSession client(rig.client_opts(seed));
    ServerSession server(rig.server_opts(seed + 1));
    Middlebox mbox(rig.mbox_opts(Middlebox::Side::kClientSide));
    std::size_t wire_bytes = 0;
    client.start();
    for (int i = 0; i < 100; ++i) {
      bool moved = false;
      Bytes a = client.take_output();
      if (!a.empty()) {
        moved = true;
        wire_bytes += a.size();
        mbox.feed_from_client(a);
      }
      Bytes b = mbox.take_to_server();
      if (!b.empty()) {
        moved = true;
        server.feed(b);
      }
      Bytes c = server.take_output();
      if (!c.empty()) {
        moved = true;
        wire_bytes += c.size();
        mbox.feed_from_server(c);
      }
      Bytes d = mbox.take_to_client();
      if (!d.empty()) {
        moved = true;
        client.feed(d);
      }
      if (!moved) break;
    }
    EXPECT_TRUE(client.established());
    return wire_bytes;
  };
  const std::size_t full = run(81);
  const std::size_t resumed = run(91);
  EXPECT_LT(resumed, full / 2);  // no certificates, no key exchange
}

TEST(MbtlsResumption, EndpointTicketsCoexistWithMiddleboxes) {
  // The client and origin use RFC 5077 tickets end to end; the middlebox's
  // sub-handshake is keyed by session ID. On resumption the primary session
  // resumes by ticket (the echoed session ID is the client's random marker,
  // which the middlebox has never seen), so the middlebox falls back to a
  // full secondary handshake — a correct mixed-mode session.
  ResumptionRig rig;
  const Bytes ticket_key = crypto::Drbg("mb-ticket-key", 0).bytes(32);
  auto copts = [&](std::uint64_t seed) {
    auto o = rig.client_opts(seed);
    o.tls.enable_session_tickets = true;
    return o;
  };
  auto sopts = [&](std::uint64_t seed) {
    auto o = rig.server_opts(seed);
    o.tls.enable_session_tickets = true;
    o.tls.ticket_key = ticket_key;
    return o;
  };
  {
    ClientSession client(copts(201));
    ServerSession server(sopts(202));
    Middlebox mbox(rig.mbox_opts(Middlebox::Side::kClientSide));
    Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
    client.start();
    chain.pump();
    ASSERT_TRUE(client.established()) << client.error_message();
    ASSERT_TRUE(mbox.joined());
  }
  {
    ClientSession client(copts(211));
    ServerSession server(sopts(212));
    Middlebox mbox(rig.mbox_opts(Middlebox::Side::kClientSide));
    Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
    client.start();
    chain.pump();
    ASSERT_TRUE(client.established()) << client.error_message();
    ASSERT_TRUE(server.established()) << server.error_message();
    EXPECT_TRUE(client.primary().resumed());   // by ticket
    EXPECT_TRUE(mbox.joined());                // full secondary handshake
    EXPECT_FALSE(mbox.resumed());

    client.send(to_bytes(std::string_view("ticketed through middlebox")));
    chain.pump();
    EXPECT_EQ(to_string(server.take_app_data()), "ticketed through middlebox");
  }
}

}  // namespace
}  // namespace mbtls::mb
