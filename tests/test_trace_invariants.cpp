// Trace-driven tests that pin the paper's protocol invariants from traces
// alone — no peeking into session internals:
//  * P7 (no extra round trips, §3.3): a vanilla TLS handshake and an mbTLS
//    handshake run side by side with tracing attached; the flight boundaries
//    extracted from the two traces must match (4 flights full, 3 resumed).
//  * P4 (pairwise-unique hop keys, §3.2): the endpoints' keylog-style
//    "keylog.hop" events carry key fingerprints per hop; across
//    client↔mbox↔server hops the fingerprints must be pairwise distinct —
//    except the bridge hop, which both endpoints fingerprint identically —
//    and a resumed connection must distribute entirely fresh hop keys.
//  * The Chrome-trace exporter of a two-middlebox handshake produces a
//    well-formed timeline (the EXPERIMENTS.md recipe in miniature).
#include <gtest/gtest.h>

#include <set>

#include "mbtls/cache.h"
#include "mbtls/metrics.h"
#include "tests/mbtls_test_util.h"
#include "tls/ticket.h"

namespace mbtls::mb {
namespace {

using namespace testing;

// ------------------------------------------------------------- vanilla TLS

struct TlsCaches {
  tls::SessionCache client, server;
};

/// One traced plain-TLS handshake; with `caches`, resumption state persists
/// across calls so the second handshake is abbreviated.
void run_tls(trace::Recorder& rec, std::uint64_t seed, TlsCaches* caches = nullptr) {
  static const tls::testing::ServerIdentity id = make_identity("trace.example");
  tls::Config ccfg;
  ccfg.is_client = true;
  ccfg.trust_anchors = {test_ca().root()};
  ccfg.server_name = "trace.example";
  ccfg.rng_label = "trace-tls-client";
  ccfg.rng_seed = seed;
  ccfg.trace_sink = &rec;
  ccfg.trace_actor = "client";
  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = id.key;
  scfg.certificate_chain = id.chain;
  scfg.rng_label = "trace-tls-server";
  scfg.rng_seed = seed + 1;
  scfg.trace_sink = &rec;
  scfg.trace_actor = "server";
  if (caches) {
    ccfg.session_cache = &caches->client;
    ccfg.offer_resumption = true;
    scfg.session_cache = &caches->server;
  }
  tls::Engine client(ccfg);
  tls::Engine server(scfg);
  client.start();
  tls::testing::pump(client, server);
  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  ASSERT_TRUE(server.handshake_done()) << server.error_message();
}

// ------------------------------------------------------------------ mbTLS

struct TracedChain {
  trace::Recorder rec;
  std::unique_ptr<ClientSession> client;
  std::unique_ptr<ServerSession> server;
  std::vector<std::unique_ptr<Middlebox>> mboxes;

  void run(int client_mboxes, int server_mboxes, std::uint64_t seed,
           tls::SessionCache* client_cache = nullptr,
           tls::SessionCache* server_cache = nullptr,
           tls::SessionCache* mbox_cache = nullptr,
           tls::TicketKeyManager* ticket_keys = nullptr) {
    auto copts = client_options("trace.example", seed);
    copts.trace_sink = &rec;
    if (client_cache) {
      copts.tls.session_cache = client_cache;
      copts.tls.offer_resumption = true;
    }
    if (ticket_keys) copts.tls.enable_session_tickets = true;
    client = std::make_unique<ClientSession>(std::move(copts));

    static const tls::testing::ServerIdentity server_id = make_identity("trace.example");
    auto sopts = server_options(server_id, seed + 1);
    sopts.trace_sink = &rec;
    if (server_cache) sopts.tls.session_cache = server_cache;
    if (ticket_keys) {
      sopts.tls.enable_session_tickets = true;
      sopts.tls.ticket_keys = ticket_keys;
    }
    server = std::make_unique<ServerSession>(std::move(sopts));

    Chain chain;
    chain.client = client.get();
    chain.server = server.get();
    for (int i = 0; i < client_mboxes + server_mboxes; ++i) {
      auto mopts = middlebox_options("tracebox.example",
                                     i < client_mboxes ? Middlebox::Side::kClientSide
                                                       : Middlebox::Side::kServerSide);
      mopts.trace_sink = &rec;
      mopts.trace_actor = "mbox" + std::to_string(i + 1);
      if (mbox_cache) mopts.session_cache = mbox_cache;
      mboxes.push_back(std::make_unique<Middlebox>(std::move(mopts)));
      chain.middleboxes.push_back(mboxes.back().get());
    }
    client->start();
    chain.pump();
    ASSERT_TRUE(client->established()) << client->error_message();
    ASSERT_TRUE(server->established()) << server->error_message();
    for (const auto& m : mboxes) ASSERT_TRUE(m->joined());
  }
};

/// Every fingerprint string mentioned by a list of keylog entries.
std::set<std::string> fingerprints_of(const std::vector<HopKeylog>& logs) {
  std::set<std::string> out;
  for (const auto& k : logs) {
    out.insert(k.c2s);
    out.insert(k.s2c);
  }
  return out;
}

// -------------------------------------------------------------------- P7

TEST(TraceInvariants, FullHandshakeAddsNoFlightsOverTls) {
  trace::Recorder tls_rec;
  run_tls(tls_rec, 101);

  TracedChain mb;
  mb.run(/*client_mboxes=*/1, /*server_mboxes=*/1, 201);

  // Flight boundaries extracted from the traces alone: the mbTLS *primary*
  // handshake must pace exactly like plain TLS on both endpoints (P7) —
  // the secondary handshakes ride inside these flights.
  const int tls_client = flight_count(tls_rec.events(), "client");
  const int tls_server = flight_count(tls_rec.events(), "server");
  const int mb_client = flight_count(mb.rec.events(), "client/primary");
  const int mb_server = flight_count(mb.rec.events(), "server/primary");
  EXPECT_EQ(tls_client, 4);
  EXPECT_EQ(tls_server, 4);
  EXPECT_EQ(mb_client, tls_client);
  EXPECT_EQ(mb_server, tls_server);

  // The engines agree with their own traces.
  EXPECT_EQ(mb.client->primary().flights(), mb_client);
  EXPECT_EQ(mb.server->primary().flights(), mb_server);
}

TEST(TraceInvariants, ResumedHandshakeAddsNoFlightsOverTls) {
  TlsCaches tls_caches;
  {
    trace::Recorder warmup;
    run_tls(warmup, 111, &tls_caches);
  }
  trace::Recorder tls_rec;
  run_tls(tls_rec, 112, &tls_caches);

  tls::SessionCache client_cache, server_cache, mbox_cache;
  {
    TracedChain warmup;
    warmup.run(1, 0, 211, &client_cache, &server_cache, &mbox_cache);
  }
  TracedChain mb;
  mb.run(1, 0, 212, &client_cache, &server_cache, &mbox_cache);
  ASSERT_TRUE(mb.client->primary().resumed());
  ASSERT_TRUE(mb.mboxes[0]->resumed());

  // Abbreviated handshake: three flights on each side, same as resumed TLS.
  const int tls_client = flight_count(tls_rec.events(), "client");
  const int mb_client = flight_count(mb.rec.events(), "client/primary");
  EXPECT_EQ(tls_client, 3);
  EXPECT_EQ(mb_client, tls_client);
  EXPECT_EQ(flight_count(mb.rec.events(), "server/primary"),
            flight_count(tls_rec.events(), "server"));
}

// -------------------------------------------------------------------- P4

TEST(TraceInvariants, HopKeysPairwiseUniqueAcrossHops) {
  TracedChain mb;
  mb.run(/*client_mboxes=*/1, /*server_mboxes=*/1, 301);

  // Each endpoint logs fingerprints for the bridge (hop 0) plus one hop per
  // middlebox on its side of the chain.
  const auto client_logs = hop_keylogs(mb.rec.events(), "client");
  const auto server_logs = hop_keylogs(mb.rec.events(), "server");
  ASSERT_EQ(client_logs.size(), 2u);
  ASSERT_EQ(server_logs.size(), 2u);
  EXPECT_EQ(client_logs[0].hop, 0u);
  EXPECT_EQ(server_logs[0].hop, 0u);

  // The bridge hop is the primary session's key block: both endpoints must
  // fingerprint it identically (that is what P5 interop hinges on).
  EXPECT_EQ(client_logs[0].c2s, server_logs[0].c2s);
  EXPECT_EQ(client_logs[0].s2c, server_logs[0].s2c);

  // P4: across the chain client — C1 — [bridge] — S1 — server, the three
  // hops' keys are pairwise distinct in both directions (and no hop reuses
  // one key for both directions). 3 hops x 2 directions = 6 fingerprints.
  std::set<std::string> all = fingerprints_of(client_logs);
  for (const auto& fp : fingerprints_of({server_logs[1]})) all.insert(fp);
  EXPECT_EQ(all.size(), 6u);

  // Cross-check from the middleboxes' own perspective: every key a
  // middlebox installed ("joined" event) is one the endpoints distributed.
  for (const auto& e : mb.rec.events()) {
    if (e.category != "mbtls" || e.name != "joined") continue;
    for (const auto& a : e.args) {
      if (a.name == "subchannel") continue;
      EXPECT_TRUE(all.count(a.value)) << e.actor << " installed unknown key " << a.value;
    }
  }
}

TEST(TraceInvariants, ResumptionDistributesFreshUniqueHopKeys) {
  tls::SessionCache client_cache, server_cache, mbox_cache;
  TracedChain first;
  first.run(1, 0, 401, &client_cache, &server_cache, &mbox_cache);
  TracedChain second;
  second.run(1, 0, 402, &client_cache, &server_cache, &mbox_cache);
  ASSERT_TRUE(second.client->primary().resumed());

  const auto logs1 = hop_keylogs(first.rec.events(), "client");
  const auto logs2 = hop_keylogs(second.rec.events(), "client");
  ASSERT_EQ(logs1.size(), 2u);
  ASSERT_EQ(logs2.size(), 2u);

  // Still pairwise unique within the resumed connection...
  EXPECT_EQ(fingerprints_of(logs2).size(), 4u);
  // ...and disjoint from the first connection: resumption re-derives the
  // bridge keys from fresh randoms and generates brand-new hop keys.
  for (const auto& fp : fingerprints_of(logs2)) {
    EXPECT_FALSE(fingerprints_of(logs1).count(fp)) << "hop key reused across connections";
  }
}

TEST(TraceInvariants, TicketResumptionThroughShardedCachesKeepsHopKeysFresh) {
  // The million-user control plane under the P4 lens: the sharded session
  // caches stand in for the plain map caches, the server seals tickets with
  // a rotating key manager, and the key rotates between the connections —
  // the second connection resumes by a stale-but-valid ticket. Freshness
  // must be unaffected: pairwise-unique hop keys, all disjoint from the
  // first connection's.
  mb::ShardedSessionCache client_cache({.shards = 4, .capacity_per_shard = 16});
  mb::ShardedSessionCache server_cache({.shards = 4, .capacity_per_shard = 16});
  mb::ShardedSessionCache mbox_cache({.shards = 4, .capacity_per_shard = 16});
  tls::TicketKeyManager keys("trace-ticket-keys", 0);

  TracedChain first;
  first.run(1, 0, 601, &client_cache, &server_cache, &mbox_cache, &keys);
  ASSERT_FALSE(first.client->primary().resumed());

  keys.rotate();

  TracedChain second;
  second.run(1, 0, 602, &client_cache, &server_cache, &mbox_cache, &keys);
  ASSERT_TRUE(second.client->primary().resumed());
  EXPECT_GE(keys.stats().unseal_stale, 1u);  // resumed across the rotation

  const auto logs1 = hop_keylogs(first.rec.events(), "client");
  const auto logs2 = hop_keylogs(second.rec.events(), "client");
  ASSERT_EQ(logs1.size(), 2u);
  ASSERT_EQ(logs2.size(), 2u);
  // P4 within the resumed connection: 2 hops x 2 directions, all distinct.
  EXPECT_EQ(fingerprints_of(logs2).size(), 4u);
  // ...and entirely fresh relative to the first connection.
  for (const auto& fp : fingerprints_of(logs2)) {
    EXPECT_FALSE(fingerprints_of(logs1).count(fp)) << "hop key reused across connections";
  }
}

// -------------------------------------------------------------- exporters

TEST(TraceInvariants, ChromeTraceOfTwoMiddleboxHandshake) {
  TracedChain mb;
  mb.run(/*client_mboxes=*/0, /*server_mboxes=*/2, 501);

  const auto metrics = summarize(mb.rec.events());
  EXPECT_EQ(metrics.sessions_established, 2u);  // client + server
  EXPECT_EQ(metrics.middleboxes_joined, 2u);
  EXPECT_EQ(metrics.failures, 0u);
  EXPECT_GT(metrics.records_sealed, 0u);

  // Without a clock installed, the recorder stamps a strictly increasing
  // sequence — the timeline is still totally ordered.
  for (std::size_t i = 1; i < mb.rec.events().size(); ++i) {
    EXPECT_LE(mb.rec.events()[i - 1].ts, mb.rec.events()[i].ts);
  }

  const std::string json = mb.rec.chrome_trace_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 40);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"keylog.hop\""), std::string::npos);
  EXPECT_NE(json.find("\"mbox.approved\""), std::string::npos);
  EXPECT_NE(json.find("\"established\""), std::string::npos);

  const std::string counters = mb.rec.counter_dump();
  EXPECT_NE(counters.find("events/client/mbtls.established 1"), std::string::npos) << counters;
  EXPECT_NE(counters.find("events/server/mbtls.keylog.hop 3"), std::string::npos) << counters;
}

}  // namespace
}  // namespace mbtls::mb
