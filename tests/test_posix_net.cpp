// Unit tests for the posix transport backend: the hierarchical timer wheel
// in isolation, then the epoll loop against real loopback sockets (single
// thread — loops are driven explicitly with poll_once / run).
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/posix/epoll_loop.h"
#include "net/posix/loop_group.h"
#include "net/posix/timer_wheel.h"

namespace mbtls::net::posix {
namespace {

// ----------------------------------------------------------------- TimerWheel
// A 1 µs tick makes ticks == microseconds, so the level boundaries sit at
// 64, 4096, and 262144 exactly.

TEST(TimerWheel, FiresInExpiryOrder) {
  TimerWheel wheel(1);
  std::vector<int> order;
  wheel.schedule(0, 5, [&] { order.push_back(5); });
  wheel.schedule(0, 2, [&] { order.push_back(2); });
  wheel.schedule(0, 9, [&] { order.push_back(9); });
  EXPECT_EQ(wheel.pending(), 3u);
  EXPECT_EQ(wheel.advance(10), 3u);
  EXPECT_EQ(order, (std::vector<int>{2, 5, 9}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, ZeroDelayFiresOnNextAdvanceNotReentrantly) {
  TimerWheel wheel(1);
  bool fired = false;
  wheel.schedule(0, 0, [&] { fired = true; });
  EXPECT_EQ(wheel.advance(0), 0u);  // not the same instant
  EXPECT_FALSE(fired);
  EXPECT_EQ(wheel.advance(1), 1u);
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, FifoWithinOneTick) {
  TimerWheel wheel(1);
  std::vector<int> order;
  wheel.schedule(0, 3, [&] { order.push_back(1); });
  wheel.schedule(0, 3, [&] { order.push_back(2); });
  wheel.advance(3);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerWheel, CascadesAcrossLevelBoundaries) {
  // 100 ticks lands in level 1, 5000 in level 2: both must cascade down and
  // fire at exactly their expiry, not at a level-granularity approximation.
  TimerWheel wheel(1);
  std::vector<int> order;
  wheel.schedule(0, 100, [&] { order.push_back(100); });
  wheel.schedule(0, 5000, [&] { order.push_back(5000); });
  EXPECT_EQ(wheel.advance(99), 0u);
  EXPECT_EQ(wheel.advance(100), 1u);
  EXPECT_EQ(wheel.advance(4999), 0u);
  EXPECT_EQ(wheel.advance(5000), 1u);
  EXPECT_EQ(order, (std::vector<int>{100, 5000}));
}

TEST(TimerWheel, DeepLevelSurvivesBigIdleJump) {
  // A timer three levels deep plus a jump that crosses many cascade
  // boundaries at once: tick-by-tick advance must still land it exactly.
  TimerWheel wheel(1);
  Time fired_at = 0;
  wheel.schedule(0, 300'000, [&] { fired_at = 300'000; });
  EXPECT_EQ(wheel.advance(299'999), 0u);
  EXPECT_EQ(wheel.advance(300'000), 1u);
  EXPECT_EQ(fired_at, 300'000u);
  // And with nothing pending, a huge jump is O(1), not 4.6 hours of ticks.
  wheel.advance(16'000'000'000ull);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, CallbackMaySchedule) {
  // Re-arming from inside a callback fires on a later advance, never the
  // same round (the slot is swapped out before firing).
  TimerWheel wheel(1);
  int fires = 0;
  std::function<void()> rearm = [&] {
    if (++fires < 3) wheel.schedule(fires, 1, rearm);
  };
  wheel.schedule(0, 1, rearm);
  EXPECT_EQ(wheel.advance(1), 1u);
  EXPECT_EQ(fires, 1);
  wheel.advance(10);
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, TimeUntilNextBoundsThePollTimeout) {
  TimerWheel wheel(kMillisecond);
  EXPECT_EQ(wheel.time_until_next(0, 10 * kMillisecond), 10 * kMillisecond);  // empty: cap
  wheel.schedule(0, 5 * kMillisecond, [] {});
  EXPECT_EQ(wheel.time_until_next(0, 10 * kMillisecond), 5 * kMillisecond);
  EXPECT_EQ(wheel.time_until_next(4 * kMillisecond, 10 * kMillisecond), kMillisecond);
  wheel.advance(5 * kMillisecond);
  // A far-away timer (not yet in level 0) falls back to the cap, which is
  // fine: the poll wakes early and re-evaluates.
  wheel.schedule(5 * kMillisecond, 500 * kMillisecond, [] {});
  EXPECT_EQ(wheel.time_until_next(5 * kMillisecond, 10 * kMillisecond), 10 * kMillisecond);
}

// ------------------------------------------------------------------ EpollLoop

TEST(EpollLoop, ClockStartsNearZero) {
  EpollLoop loop;
  EXPECT_LT(loop.now(), kSecond);  // monotonic-since-construction, not epoch
}

TEST(EpollLoop, EchoRoundTripAndCleanTeardown) {
  EpollLoop loop;
  std::string server_got, client_got;
  const Port port = loop.listen_stream(0, [&](Stream& s) {
    s.on_data = [&s, &server_got](ByteView data) {
      server_got.append(reinterpret_cast<const char*>(data.data()), data.size());
      s.send(data);  // echo
    };
  });
  ASSERT_NE(port, 0);

  Stream& client = loop.dial({0, port, "127.0.0.1"});
  bool connected = false;
  int client_closes = 0;
  client.on_connect = [&] {
    connected = true;
    client.send(to_bytes(std::string_view("ping")));
  };
  client.on_data = [&](ByteView data) {
    client_got.append(reinterpret_cast<const char*>(data.data()), data.size());
    if (client_got.size() == 4) client.close();  // FIN; echo side closes in turn
  };
  client.on_close = [&] { ++client_closes; };

  EXPECT_EQ(loop.run(), RunStatus::kDrained);
  EXPECT_TRUE(connected);
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "ping");
  EXPECT_EQ(client_closes, 1);  // exactly once
  EXPECT_EQ(client.error(), SocketError::kNone);
  EXPECT_EQ(loop.open_streams(), 0u);
}

TEST(EpollLoop, SendBeforeEstablishmentIsBuffered) {
  // The contract allows send() on a still-connecting stream; bytes go out on
  // establishment (the simulator behaves the same way).
  EpollLoop loop;
  std::string got;
  const Port port = loop.listen_stream(0, [&](Stream& s) {
    s.on_data = [&got, &s](ByteView data) {
      got.append(reinterpret_cast<const char*>(data.data()), data.size());
      s.close();
    };
  });
  Stream& client = loop.dial({0, port, "127.0.0.1"});
  EXPECT_FALSE(client.established());
  client.send(to_bytes(std::string_view("early")));
  client.on_close = [&] {};
  EXPECT_EQ(loop.run(), RunStatus::kDrained);
  EXPECT_EQ(got, "early");
}

TEST(EpollLoop, ConnectRefusedReportsErrorBeforeClose) {
  // Reserve a loopback port the kernel will refuse: bind+listen, read the
  // port, close the listener, dial it.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const Port dead_port = ntohs(addr.sin_port);
  ::close(probe);

  EpollLoop loop;
  Stream& client = loop.dial({0, dead_port, "127.0.0.1"});
  std::vector<std::string> events;
  client.on_connect = [&] { events.push_back("connect"); };
  client.on_error = [&](SocketError e) {
    events.push_back(e == SocketError::kPeerReset ? "error:reset" : "error:other");
  };
  client.on_close = [&] { events.push_back("close"); };
  EXPECT_EQ(loop.run(), RunStatus::kDrained);
  EXPECT_EQ(events, (std::vector<std::string>{"error:reset", "close"}));
  EXPECT_FALSE(client.established());
  EXPECT_TRUE(client.closed());
  EXPECT_EQ(client.error(), SocketError::kPeerReset);
}

TEST(EpollLoop, PeerResetSurfacesAsError) {
  EpollLoop loop;
  const Port port = loop.listen_stream(0, [](Stream& s) { s.reset(); });
  Stream& client = loop.dial({0, port, "127.0.0.1"});
  std::vector<std::string> events;
  client.on_error = [&](SocketError e) {
    events.push_back(e == SocketError::kPeerReset ? "error:reset" : "error:other");
  };
  client.on_close = [&] { events.push_back("close"); };
  EXPECT_EQ(loop.run(), RunStatus::kDrained);
  EXPECT_EQ(events, (std::vector<std::string>{"error:reset", "close"}));
  EXPECT_EQ(client.error(), SocketError::kPeerReset);
}

TEST(EpollLoop, BackpressureSpillsThenSignalsWritable) {
  // Two loops so the receiver can be wedged: the sender's kernel buffers
  // fill, send() spills into the stream backlog, writable() goes false, and
  // once the receiver drains, on_writable fires with the backlog empty.
  EpollLoop sender_loop, receiver_loop;
  std::size_t received = 0;
  const Port port = receiver_loop.listen_stream(0, [&](Stream& s) {
    s.on_data = [&received](ByteView data) { received += data.size(); };
  });

  Stream& out = sender_loop.dial({0, port, "127.0.0.1"});
  bool writable_fired = false;
  out.on_writable = [&] { writable_fired = true; };
  bool connected = false;
  out.on_connect = [&] { connected = true; };
  for (int i = 0; i < 2000 && !connected; ++i) {
    sender_loop.poll_once(kMillisecond);
    receiver_loop.poll_once(0);
  }
  ASSERT_TRUE(connected);

  // Wedge the receiver (stop polling it) and pump until backpressure.
  const Bytes chunk(64 * 1024, std::uint8_t{0xAB});
  std::size_t sent = 0;
  for (int i = 0; i < 4096 && out.writable(); ++i) {
    out.send(chunk);
    sent += chunk.size();
    sender_loop.poll_once(0);
  }
  ASSERT_FALSE(out.writable()) << "never hit backpressure after " << sent << " bytes";
  auto& tcp = static_cast<TcpStream&>(out);
  EXPECT_GE(tcp.backlog(), TcpStream::kHighWater);

  // Un-wedge: drain both sides until the backlog clears.
  for (int i = 0; i < 20000 && tcp.backlog() > 0; ++i) {
    receiver_loop.poll_once(0);
    sender_loop.poll_once(kMillisecond);
  }
  EXPECT_EQ(tcp.backlog(), 0u);
  EXPECT_TRUE(writable_fired);
  EXPECT_TRUE(out.writable());

  out.close();
  for (int i = 0; i < 2000 && !(out.closed() && receiver_loop.open_streams() == 0); ++i) {
    receiver_loop.poll_once(0);
    sender_loop.poll_once(kMillisecond);
  }
  EXPECT_EQ(received, sent);  // byte-exact despite the spill
}

TEST(EpollLoop, TimersFireOnTheLoopClock) {
  EpollLoop loop;
  std::vector<int> order;
  Time t_short = 0, t_long = 0;
  loop.schedule(20 * kMillisecond, [&] {
    order.push_back(20);
    t_long = loop.now();
  });
  loop.schedule(5 * kMillisecond, [&] {
    order.push_back(5);
    t_short = loop.now();
  });
  EXPECT_EQ(loop.run(), RunStatus::kDrained);  // timers alone keep the loop alive
  EXPECT_EQ(order, (std::vector<int>{5, 20}));
  EXPECT_GE(t_short, 5 * kMillisecond);
  EXPECT_GE(t_long, 20 * kMillisecond);
  EXPECT_LT(t_long, kSecond);  // sanity: not stuck a full epoll_wait cap
}

TEST(EpollLoop, RunUntilRespectsDeadline) {
  EpollLoop loop;
  bool fired = false;
  loop.schedule(kSecond, [&] { fired = true; });
  EXPECT_EQ(loop.run_until(20 * kMillisecond), RunStatus::kDeadlineReached);
  EXPECT_FALSE(fired);
  EXPECT_EQ(loop.run(), RunStatus::kDrained);
  EXPECT_TRUE(fired);
}

// ----------------------------------------------------------- posts + wakeup

TEST(EpollLoop, PostedWorkRunsOnNextRoundAndCountsAgainstIdle) {
  EpollLoop loop;
  bool ran = false;
  loop.post([&] { ran = true; });
  EXPECT_FALSE(loop.idle());  // a queued post is pending work
  loop.poll_once(0);
  EXPECT_TRUE(ran);
  EXPECT_TRUE(loop.idle());
}

TEST(EpollLoop, PendingPostShortCircuitsTheWait) {
  // A post already queued must not sit behind a long epoll_wait timeout —
  // the loop polls without blocking and runs it this round.
  EpollLoop loop;
  bool ran = false;
  loop.post([&] { ran = true; });
  const auto t0 = std::chrono::steady_clock::now();
  loop.poll_once(5 * kSecond);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(ran);
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 1.0);
}

TEST(EpollLoop, CrossThreadPostWakesABlockedLoop) {
  // The loop blocks in epoll_wait with a multi-second budget; a post from
  // another thread must cut the wait short via the eventfd, not ride it out.
  EpollLoop loop;
  std::atomic<bool> ran{false};
  std::thread poster([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    loop.post([&] { ran.store(true, std::memory_order_release); });
  });
  const auto t0 = std::chrono::steady_clock::now();
  while (!ran.load(std::memory_order_acquire)) loop.poll_once(10 * kSecond);
  const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0);
  poster.join();
  EXPECT_LT(elapsed.count(), 5.0);  // woke on the eventfd, not the timeout
}

// ------------------------------------------------------------------ LoopGroup
// Single-threaded LoopGroup semantics: loops are driven manually with
// poll_once (start() never called), which pins down the sharding and
// placement logic without any interleaving nondeterminism. The threaded
// lifecycle runs in tests/test_posix_loopback.cpp.

void poll_group(LoopGroup& group, int rounds = 50) {
  for (int r = 0; r < rounds; ++r)
    for (std::size_t i = 0; i < group.size(); ++i) group.loop(i).poll_once(0);
}

TEST(LoopGroup, ReuseportListenersShareOnePortAndShardAccepts) {
  LoopGroup group({4, LoopGroup::DialPolicy::kRoundRobin});
  std::vector<std::size_t> accept_loops;
  const Port port = group.listen(0, [&](std::size_t li, Stream& s) {
    accept_loops.push_back(li);
    (void)s;
  });
  ASSERT_NE(port, 0);

  EpollLoop dialer;
  constexpr int kDials = 16;
  for (int i = 0; i < kDials; ++i) dialer.dial({0, port, "127.0.0.1"});
  for (int r = 0; r < 100 && accept_loops.size() < kDials; ++r) {
    dialer.poll_once(kMillisecond);
    poll_group(group, 1);
  }

  // Every connection landed on exactly one loop, and the per-loop counters
  // account for all of them.
  EXPECT_EQ(accept_loops.size(), static_cast<std::size_t>(kDials));
  const auto counts = group.accept_counts();
  ASSERT_EQ(counts.size(), 4u);
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kDials));
}

TEST(LoopGroup, RoundRobinCyclesThroughLoops) {
  LoopGroup group({3, LoopGroup::DialPolicy::kRoundRobin});
  EXPECT_EQ(group.pick_loop(), 0u);
  EXPECT_EQ(group.pick_loop(), 1u);
  EXPECT_EQ(group.pick_loop(), 2u);
  EXPECT_EQ(group.pick_loop(), 0u);
}

TEST(LoopGroup, LeastSessionsAvoidsTheLoadedLoop) {
  LoopGroup group({2, LoopGroup::DialPolicy::kLeastSessions});
  const Port port = group.loop(0).listen_stream(0, [](Stream&) {});
  group.loop(0).dial({0, port, "127.0.0.1"});  // loop 0 now carries streams
  poll_group(group);
  ASSERT_GT(group.loop(0).open_streams(), 0u);
  EXPECT_EQ(group.pick_loop(), 1u);
}

TEST(LoopGroup, PostDialRunsOnTheChosenLoopThread) {
  LoopGroup group({2, LoopGroup::DialPolicy::kRoundRobin});
  group.start();
  std::atomic<bool> ran{false};
  std::atomic<std::size_t> seen_index{99};
  const std::size_t chosen = group.post_dial([&](EpollLoop& loop, std::size_t i) {
    (void)loop;
    seen_index.store(i, std::memory_order_relaxed);
    ran.store(true, std::memory_order_release);
  });
  for (int waited = 0; waited < 2000 && !ran.load(std::memory_order_acquire); ++waited)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  group.stop();
  ASSERT_TRUE(ran.load());
  EXPECT_EQ(seen_index.load(), chosen);
}

TEST(LoopGroup, StopJoinsAndCanBeCalledIdempotently) {
  LoopGroup group({2, LoopGroup::DialPolicy::kRoundRobin});
  EXPECT_FALSE(group.running());
  group.start();
  EXPECT_TRUE(group.running());
  group.stop();
  EXPECT_FALSE(group.running());
  group.stop();  // second stop is a no-op, not a crash
  EXPECT_FALSE(group.running());
}

}  // namespace
}  // namespace mbtls::net::posix
