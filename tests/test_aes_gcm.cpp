// AES known answers from FIPS 197 appendix C and AES-GCM known answers from
// the original GCM spec test vectors (McGrew & Viega), plus round-trip and
// tamper-detection properties.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/drbg.h"
#include "crypto/gcm.h"
#include "util/hex.h"

namespace mbtls::crypto {
namespace {

Bytes encrypt_one(const Aes& aes, const Bytes& pt) {
  Bytes out(16);
  aes.encrypt_block(pt.data(), out.data());
  return out;
}

TEST(Aes, Fips197Aes128) {
  const Aes aes(hex_decode("000102030405060708090a0b0c0d0e0f"));
  const Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  EXPECT_EQ(hex_encode(encrypt_one(aes, pt)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, Fips197Aes192) {
  const Aes aes(hex_decode("000102030405060708090a0b0c0d0e0f1011121314151617"));
  const Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  EXPECT_EQ(hex_encode(encrypt_one(aes, pt)), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(Aes, Fips197Aes256) {
  const Aes aes(hex_decode("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  const Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  EXPECT_EQ(hex_encode(encrypt_one(aes, pt)), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes, DecryptInvertsEncrypt) {
  Drbg rng("aes-roundtrip", 0);
  for (std::size_t key_len : {16u, 24u, 32u}) {
    const Aes aes(rng.bytes(key_len));
    const Bytes pt = rng.bytes(16);
    Bytes ct(16), back(16);
    aes.encrypt_block(pt.data(), ct.data());
    aes.decrypt_block(ct.data(), back.data());
    EXPECT_EQ(back, pt) << "key_len " << key_len;
    EXPECT_NE(ct, pt);
  }
}

TEST(Aes, RejectsBadKeySize) {
  EXPECT_THROW(Aes(Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(33, 0)), std::invalid_argument);
}

// GCM spec test case 1: AES-128, zero key, zero IV, empty everything.
TEST(Gcm, SpecCase1EmptyAes128) {
  const AesGcm gcm(Bytes(16, 0));
  const Bytes out = gcm.seal(Bytes(12, 0), {}, {});
  EXPECT_EQ(hex_encode(out), "58e2fccefa7e3061367f1d57a4e7455a");
}

// GCM spec test case 2: AES-128, 16 zero plaintext bytes.
TEST(Gcm, SpecCase2SingleBlockAes128) {
  const AesGcm gcm(Bytes(16, 0));
  const Bytes out = gcm.seal(Bytes(12, 0), {}, Bytes(16, 0));
  EXPECT_EQ(hex_encode(out),
            "0388dace60b6a392f328c2b971b2fe78"
            "ab6e47d42cec13bdf53a67b21257bddf");
}

// GCM spec test case 13: AES-256, zero key/IV, empty.
TEST(Gcm, SpecCase13EmptyAes256) {
  const AesGcm gcm(Bytes(32, 0));
  const Bytes out = gcm.seal(Bytes(12, 0), {}, {});
  EXPECT_EQ(hex_encode(out), "530f8afbc74536b9a963b4f1c4cb738b");
}

// GCM spec test case 14: AES-256, single zero block.
TEST(Gcm, SpecCase14SingleBlockAes256) {
  const AesGcm gcm(Bytes(32, 0));
  const Bytes out = gcm.seal(Bytes(12, 0), {}, Bytes(16, 0));
  EXPECT_EQ(hex_encode(out),
            "cea7403d4d606b6e074ec5d3baf39d18"
            "d0d1c8a799996bf0265b98b5d48ab919");
}

// GCM spec test case 4: AES-128 with AAD and a non-multiple-of-16 plaintext.
TEST(Gcm, SpecCase4WithAad) {
  const AesGcm gcm(hex_decode("feffe9928665731c6d6a8f9467308308"));
  const Bytes iv = hex_decode("cafebabefacedbaddecaf888");
  const Bytes pt = hex_decode(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const Bytes aad = hex_decode("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const Bytes out = gcm.seal(iv, aad, pt);
  EXPECT_EQ(hex_encode(out),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
            "5bc94fbc3221a5db94fae95ae7121a47");
}

TEST(Gcm, OpenRoundTrip) {
  Drbg rng("gcm-roundtrip", 1);
  const AesGcm gcm(rng.bytes(32));
  const Bytes iv = rng.bytes(12);
  const Bytes aad = rng.bytes(13);
  const Bytes pt = rng.bytes(100);
  const Bytes sealed = gcm.seal(iv, aad, pt);
  const auto opened = gcm.open(iv, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(Gcm, DetectsCiphertextTampering) {
  Drbg rng("gcm-tamper", 2);
  const AesGcm gcm(rng.bytes(16));
  const Bytes iv = rng.bytes(12);
  const Bytes pt = rng.bytes(48);
  Bytes sealed = gcm.seal(iv, {}, pt);
  // Flip every byte position in turn; all must fail authentication.
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    Bytes mutated = sealed;
    mutated[i] ^= 0x01;
    EXPECT_FALSE(gcm.open(iv, {}, mutated).has_value()) << "byte " << i;
  }
}

TEST(Gcm, DetectsAadTampering) {
  Drbg rng("gcm-aad", 3);
  const AesGcm gcm(rng.bytes(16));
  const Bytes iv = rng.bytes(12);
  const Bytes aad = rng.bytes(8);
  const Bytes sealed = gcm.seal(iv, aad, Bytes(10, 0x7f));
  Bytes bad_aad = aad;
  bad_aad[0] ^= 1;
  EXPECT_FALSE(gcm.open(iv, bad_aad, sealed).has_value());
  EXPECT_TRUE(gcm.open(iv, aad, sealed).has_value());
}

TEST(Gcm, WrongIvFails) {
  Drbg rng("gcm-iv", 4);
  const AesGcm gcm(rng.bytes(16));
  const Bytes iv = rng.bytes(12);
  const Bytes sealed = gcm.seal(iv, {}, Bytes(10, 1));
  Bytes other_iv = iv;
  other_iv[11] ^= 1;
  EXPECT_FALSE(gcm.open(other_iv, {}, sealed).has_value());
}

TEST(Gcm, TruncatedInputRejected) {
  const AesGcm gcm(Bytes(16, 0));
  EXPECT_FALSE(gcm.open(Bytes(12, 0), {}, Bytes(15, 0)).has_value());
}

TEST(Gcm, RejectsBadIvSize) {
  const AesGcm gcm(Bytes(16, 0));
  EXPECT_THROW(gcm.seal(Bytes(11, 0), {}, {}), std::invalid_argument);
  EXPECT_THROW(gcm.seal(Bytes(16, 0), {}, {}), std::invalid_argument);
}

// Round-trip sweep over plaintext sizes crossing block boundaries.
class GcmSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GcmSizeSweep, RoundTrip) {
  Drbg rng("gcm-sweep", GetParam());
  const AesGcm gcm(rng.bytes(32));
  const Bytes iv = rng.bytes(12);
  const Bytes pt = rng.bytes(GetParam());
  const auto opened = gcm.open(iv, {}, gcm.seal(iv, {}, pt));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GcmSizeSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 255, 256, 1000, 16384));

}  // namespace
}  // namespace mbtls::crypto
