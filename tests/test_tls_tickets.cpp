// Ticket-based session resumption (RFC 5077 / paper §3.5), including
// enclave-sealed tickets — "only the enclave knows the key needed to
// decrypt the session ticket" — and the rotating TicketKeyManager the
// million-user control plane seals tickets with.
#include <gtest/gtest.h>

#include "crypto/backend.h"
#include "tests/tls_test_util.h"
#include "tls/ticket.h"

namespace mbtls::tls {
namespace {

using testing::make_identity;
using testing::pump;
using testing::test_ca;

struct TicketRig {
  testing::ServerIdentity id = make_identity("tickets.example");
  SessionCache client_cache;
  Bytes ticket_key = crypto::Drbg("ticket-key", 0).bytes(32);

  Config client_cfg(std::uint64_t seed) {
    Config cfg;
    cfg.is_client = true;
    cfg.trust_anchors = {test_ca().root()};
    cfg.server_name = "tickets.example";
    cfg.session_cache = &client_cache;
    cfg.offer_resumption = true;
    cfg.enable_session_tickets = true;
    cfg.rng_label = "tkt-client";
    cfg.rng_seed = seed;
    return cfg;
  }
  Config server_cfg(std::uint64_t seed) {
    Config cfg;
    cfg.is_client = false;
    cfg.private_key = id.key;
    cfg.certificate_chain = id.chain;
    cfg.enable_session_tickets = true;
    cfg.ticket_key = ticket_key;
    cfg.rng_label = "tkt-server";
    cfg.rng_seed = seed;
    return cfg;
  }
};

TEST(TlsTickets, FullHandshakeIssuesTicketThenResumes) {
  TicketRig rig;
  // Connection 1: full handshake; the server issues a NewSessionTicket.
  {
    Engine client(rig.client_cfg(1));
    Engine server(rig.server_cfg(2));
    client.start();
    pump(client, server);
    ASSERT_TRUE(client.handshake_done()) << client.error_message();
    ASSERT_FALSE(client.resumed());
  }
  const auto cached = rig.client_cache.lookup_by_peer("tickets.example");
  ASSERT_TRUE(cached.has_value());
  ASSERT_FALSE(cached->ticket.empty());

  // Connection 2: the server holds NO session cache — the ticket alone
  // restores the session (that is the point of tickets).
  {
    Engine client(rig.client_cfg(11));
    Engine server(rig.server_cfg(12));
    client.start();
    pump(client, server);
    ASSERT_TRUE(client.handshake_done()) << client.error_message();
    ASSERT_TRUE(server.handshake_done()) << server.error_message();
    EXPECT_TRUE(client.resumed());
    EXPECT_TRUE(server.resumed());
    client.send(to_bytes(std::string_view("ticket data")));
    pump(client, server);
    EXPECT_EQ(mbtls::to_string(server.take_plaintext()), "ticket data");
  }
}

TEST(TlsTickets, WrongTicketKeyFallsBackToFullHandshake) {
  TicketRig rig;
  {
    Engine client(rig.client_cfg(21));
    Engine server(rig.server_cfg(22));
    client.start();
    pump(client, server);
    ASSERT_TRUE(client.handshake_done());
  }
  // A different server instance with a rotated ticket key cannot decrypt
  // the ticket; it must fall back to a full handshake (and issue a fresh
  // ticket under the new key).
  Config scfg = rig.server_cfg(32);
  scfg.ticket_key = crypto::Drbg("rotated-key", 1).bytes(32);
  Engine client(rig.client_cfg(31));
  Engine server(scfg);
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  EXPECT_FALSE(client.resumed());
  // The fresh ticket (under the rotated key) replaced the stale one.
  const auto cached = rig.client_cache.lookup_by_peer("tickets.example");
  ASSERT_TRUE(cached.has_value());
  EXPECT_FALSE(cached->ticket.empty());
}

TEST(TlsTickets, TamperedTicketRejectedGracefully) {
  TicketRig rig;
  {
    Engine client(rig.client_cfg(41));
    Engine server(rig.server_cfg(42));
    client.start();
    pump(client, server);
    ASSERT_TRUE(client.handshake_done());
  }
  // Corrupt the cached ticket.
  auto cached = rig.client_cache.lookup_by_peer("tickets.example");
  ASSERT_TRUE(cached.has_value());
  cached->ticket[cached->ticket.size() / 2] ^= 1;
  rig.client_cache.store_by_peer("tickets.example", *cached);

  Engine client(rig.client_cfg(51));
  Engine server(rig.server_cfg(52));
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  EXPECT_FALSE(client.resumed());  // fell back to a full handshake
}

TEST(TlsTickets, EnclaveSealedTickets) {
  // An attested server seals tickets with its enclave sealing key: no
  // ticket_key ever exists outside the enclave, and a different enclave
  // (other code, or another machine) cannot decrypt them.
  sgx::Platform platform;
  sgx::Enclave& enclave = platform.launch("ticket-server-v1");
  TicketRig rig;

  auto server_cfg = [&](std::uint64_t seed, sgx::Enclave* enc) {
    Config cfg = rig.server_cfg(seed);
    cfg.ticket_key.clear();
    cfg.enclave = enc;
    return cfg;
  };
  {
    Engine client(rig.client_cfg(61));
    Engine server(server_cfg(62, &enclave));
    client.start();
    pump(client, server);
    ASSERT_TRUE(client.handshake_done()) << client.error_message();
  }
  const auto cached = rig.client_cache.lookup_by_peer("tickets.example");
  ASSERT_TRUE(cached && !cached->ticket.empty());
  // The platform adversary sees the ticket on the wire but cannot open it,
  // and neither can different enclave code.
  sgx::Enclave& other_code = platform.launch("ticket-server-v2");
  EXPECT_FALSE(other_code.unseal(cached->ticket).has_value());

  // The same enclave resumes.
  {
    Engine client(rig.client_cfg(71));
    Engine server(server_cfg(72, &enclave));
    client.start();
    pump(client, server);
    ASSERT_TRUE(client.handshake_done()) << client.error_message();
    EXPECT_TRUE(client.resumed());
  }
}

TEST(TlsTickets, TicketStateCodecRoundTrip) {
  SessionState state;
  state.suite = CipherSuite::kEcdheRsaAes256GcmSha384;
  state.session_id = Bytes(32, 5);
  state.master_secret = Bytes(48, 6);
  state.mbtls_key_material = Bytes(17, 7);
  const auto back = decode_ticket_state(encode_ticket_state(state));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->suite, state.suite);
  EXPECT_EQ(back->master_secret, state.master_secret);
  EXPECT_EQ(back->mbtls_key_material, state.mbtls_key_material);
  EXPECT_FALSE(decode_ticket_state(Bytes(3, 1)).has_value());
}

TEST(TlsTickets, ServerWithoutTicketsIgnoresOffer) {
  TicketRig rig;
  Config scfg = rig.server_cfg(82);
  scfg.enable_session_tickets = false;
  Engine client(rig.client_cfg(81));  // offers empty ticket extension
  Engine server(scfg);
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  EXPECT_FALSE(client.resumed());
  // No ticket issued: the cache entry (ID-based) has no ticket bytes.
  const auto cached = rig.client_cache.lookup_by_peer("tickets.example");
  ASSERT_TRUE(cached.has_value());
  EXPECT_TRUE(cached->ticket.empty());
}

// ------------------------------------------------- rotating ticket keys

/// Pin the crypto backend for a scope, restoring the resolved one after.
struct BackendGuard {
  explicit BackendGuard(crypto::Backend b) : saved_(crypto::active_backend()) {
    crypto::force_backend_for_testing(b);
  }
  ~BackendGuard() { crypto::force_backend_for_testing(saved_); }
  crypto::Backend saved_;
};

TEST(TicketKeyManager, RoundTripAcrossLengthsAndBackends) {
  // Property: seal then unseal is the identity for every plaintext length
  // from empty through multi-record, under both crypto backends (kAesni is
  // clamped to scalar on hosts without AES-NI, which just re-runs scalar).
  for (const crypto::Backend backend : {crypto::Backend::kScalar, crypto::Backend::kAesni}) {
    BackendGuard guard(backend);
    TicketKeyManager keys("prop-keys", 7);
    crypto::Drbg payload_rng("ticket-payloads", 7);
    for (const std::size_t len :
         {0u, 1u, 2u, 15u, 16u, 17u, 31u, 32u, 48u, 63u, 64u, 255u, 256u, 1000u, 4096u}) {
      const Bytes plain = payload_rng.bytes(len);
      const Bytes ticket = keys.seal(plain);
      EXPECT_EQ(ticket.size(), TicketKeyManager::kMinTicketLen + len);
      const auto opened = keys.unseal(ticket);
      ASSERT_TRUE(opened.has_value()) << "len=" << len;
      EXPECT_EQ(opened->plaintext, plain);
      EXPECT_FALSE(opened->stale);
    }
    const auto st = keys.stats();
    EXPECT_EQ(st.seals, 15u);
    EXPECT_EQ(st.unseal_current, 15u);
    EXPECT_EQ(st.rejects, 0u);
  }
}

TEST(TicketKeyManager, BackendsProduceInterchangeableTickets) {
  // AES-GCM is AES-GCM: a ticket sealed under one backend must unseal under
  // the other (same manager — the key schedule is backend-independent).
  TicketKeyManager keys("cross-keys", 9);
  const Bytes plain = crypto::Drbg("cross-payload", 9).bytes(120);
  Bytes sealed_scalar, sealed_accel;
  {
    BackendGuard guard(crypto::Backend::kScalar);
    sealed_scalar = keys.seal(plain);
  }
  {
    BackendGuard guard(crypto::Backend::kAesni);
    sealed_accel = keys.seal(plain);
    const auto opened = keys.unseal(sealed_scalar);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(opened->plaintext, plain);
  }
  BackendGuard guard(crypto::Backend::kScalar);
  const auto opened = keys.unseal(sealed_accel);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->plaintext, plain);
}

TEST(TicketKeyManager, EveryBitFlipRejects) {
  TicketKeyManager keys("flip-keys", 11);
  const Bytes plain = crypto::Drbg("flip-payload", 11).bytes(40);
  const Bytes ticket = keys.seal(plain);
  for (std::size_t i = 0; i < ticket.size(); ++i) {
    for (const std::uint8_t mask : {0x01, 0x80}) {
      Bytes bad = ticket;
      bad[i] ^= mask;
      // A flip in the key name looks like an unknown key; a flip anywhere
      // else fails GCM authentication. Either way: nullopt, never a throw.
      EXPECT_FALSE(keys.unseal(bad).has_value()) << "byte " << i;
    }
  }
  EXPECT_EQ(keys.stats().rejects, 2 * ticket.size());
}

TEST(TicketKeyManager, EveryTruncationRejects) {
  TicketKeyManager keys("trunc-keys", 13);
  const Bytes ticket = keys.seal(crypto::Drbg("trunc-payload", 13).bytes(64));
  for (std::size_t len = 0; len < ticket.size(); ++len) {
    const auto truncated = ByteView(ticket).first(len);
    EXPECT_FALSE(keys.unseal(truncated).has_value()) << "len=" << len;
  }
}

TEST(TicketKeyManager, RotationWindowIsExactlyTwoGenerations) {
  TicketKeyManager keys("rot-keys", 17);
  const Bytes plain = crypto::Drbg("rot-payload", 17).bytes(48);
  const Bytes ticket = keys.seal(plain);
  EXPECT_EQ(keys.generation(), 0u);

  keys.rotate();
  EXPECT_EQ(keys.generation(), 1u);
  const auto stale = keys.unseal(ticket);
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->plaintext, plain);
  EXPECT_TRUE(stale->stale);  // caller should reissue

  keys.rotate();
  EXPECT_FALSE(keys.unseal(ticket).has_value());  // two rotations: gone

  const auto st = keys.stats();
  EXPECT_EQ(st.unseal_stale, 1u);
  EXPECT_EQ(st.rejects, 1u);
}

TEST(TicketKeyManager, DistinctManagersCannotOpenEachOthersTickets) {
  TicketKeyManager a("fleet-a", 1), b("fleet-b", 2);
  const Bytes ticket = a.seal(crypto::Drbg("xmgr", 3).bytes(32));
  EXPECT_FALSE(b.unseal(ticket).has_value());
  EXPECT_TRUE(a.unseal(ticket).has_value());
}

// ---------------------------------------- engine + rotating ticket keys

struct ManagedTicketRig {
  testing::ServerIdentity id = make_identity("rotate.example");
  SessionCache client_cache;
  TicketKeyManager keys{"rig-ticket-keys", 0};

  Config client_cfg(std::uint64_t seed) {
    Config cfg;
    cfg.is_client = true;
    cfg.trust_anchors = {test_ca().root()};
    cfg.server_name = "rotate.example";
    cfg.session_cache = &client_cache;
    cfg.offer_resumption = true;
    cfg.enable_session_tickets = true;
    cfg.rng_label = "rot-client";
    cfg.rng_seed = seed;
    return cfg;
  }
  Config server_cfg(std::uint64_t seed) {
    Config cfg;
    cfg.is_client = false;
    cfg.private_key = id.key;
    cfg.certificate_chain = id.chain;
    cfg.enable_session_tickets = true;
    cfg.ticket_keys = &keys;
    cfg.rng_label = "rot-server";
    cfg.rng_seed = seed;
    return cfg;
  }
  /// One connection; returns whether it resumed.
  bool connect(std::uint64_t seed) {
    Engine client(client_cfg(seed));
    Engine server(server_cfg(seed + 1));
    client.start();
    pump(client, server);
    EXPECT_TRUE(client.handshake_done()) << client.error_message();
    EXPECT_TRUE(server.handshake_done()) << server.error_message();
    return client.handshake_done() && client.resumed();
  }
  Bytes cached_ticket() {
    const auto cached = client_cache.lookup_by_peer("rotate.example");
    return cached ? cached->ticket : Bytes{};
  }
};

TEST(TlsTickets, ManagerSealedTicketResumes) {
  ManagedTicketRig rig;
  EXPECT_FALSE(rig.connect(100));
  ASSERT_FALSE(rig.cached_ticket().empty());
  EXPECT_TRUE(rig.connect(110));
  EXPECT_GE(rig.keys.stats().unseal_current, 1u);
}

TEST(TlsTickets, ResumptionAcrossOneRotationReissuesFreshTicket) {
  ManagedTicketRig rig;
  EXPECT_FALSE(rig.connect(200));
  const Bytes gen0_ticket = rig.cached_ticket();
  ASSERT_FALSE(gen0_ticket.empty());

  // One rotation: the old ticket still unseals (previous key) but is stale,
  // so the abbreviated flight carries a fresh NewSessionTicket.
  rig.keys.rotate();
  EXPECT_TRUE(rig.connect(210));
  const Bytes gen1_ticket = rig.cached_ticket();
  ASSERT_FALSE(gen1_ticket.empty());
  EXPECT_NE(gen1_ticket, gen0_ticket);
  // The reissued ticket names the current key, not the retired one.
  EXPECT_FALSE(std::equal(gen1_ticket.begin(),
                          gen1_ticket.begin() + TicketKeyManager::kKeyNameLen,
                          gen0_ticket.begin()));
  EXPECT_GE(rig.keys.stats().unseal_stale, 1u);

  // A client that reconnects once per rotation window stays on the fast
  // path forever: rotate again, the gen-1 ticket is now previous-but-valid.
  rig.keys.rotate();
  EXPECT_TRUE(rig.connect(220));
}

TEST(TlsTickets, ResumptionWithoutRotationDoesNotReissue) {
  ManagedTicketRig rig;
  EXPECT_FALSE(rig.connect(300));
  const Bytes first = rig.cached_ticket();
  ASSERT_FALSE(first.empty());
  // Same key generation: the abbreviated handshake skips NewSessionTicket
  // and the client keeps (and re-uses) the ticket it already holds.
  EXPECT_TRUE(rig.connect(310));
  EXPECT_EQ(rig.cached_ticket(), first);
  EXPECT_TRUE(rig.connect(320));
}

TEST(TlsTickets, TwoRotationsFallBackToFullHandshakeCleanly) {
  ManagedTicketRig rig;
  EXPECT_FALSE(rig.connect(400));
  rig.keys.rotate();
  rig.keys.rotate();
  // The ticket's key is retired: full handshake, no abort, fresh ticket.
  EXPECT_FALSE(rig.connect(410));
  EXPECT_GE(rig.keys.stats().rejects, 1u);
  ASSERT_FALSE(rig.cached_ticket().empty());
  EXPECT_TRUE(rig.connect(420));  // the replacement ticket works
}

}  // namespace
}  // namespace mbtls::tls
