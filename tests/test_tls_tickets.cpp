// Ticket-based session resumption (RFC 5077 / paper §3.5), including
// enclave-sealed tickets — "only the enclave knows the key needed to
// decrypt the session ticket".
#include <gtest/gtest.h>

#include "tests/tls_test_util.h"

namespace mbtls::tls {
namespace {

using testing::make_identity;
using testing::pump;
using testing::test_ca;

struct TicketRig {
  testing::ServerIdentity id = make_identity("tickets.example");
  SessionCache client_cache;
  Bytes ticket_key = crypto::Drbg("ticket-key", 0).bytes(32);

  Config client_cfg(std::uint64_t seed) {
    Config cfg;
    cfg.is_client = true;
    cfg.trust_anchors = {test_ca().root()};
    cfg.server_name = "tickets.example";
    cfg.session_cache = &client_cache;
    cfg.offer_resumption = true;
    cfg.enable_session_tickets = true;
    cfg.rng_label = "tkt-client";
    cfg.rng_seed = seed;
    return cfg;
  }
  Config server_cfg(std::uint64_t seed) {
    Config cfg;
    cfg.is_client = false;
    cfg.private_key = id.key;
    cfg.certificate_chain = id.chain;
    cfg.enable_session_tickets = true;
    cfg.ticket_key = ticket_key;
    cfg.rng_label = "tkt-server";
    cfg.rng_seed = seed;
    return cfg;
  }
};

TEST(TlsTickets, FullHandshakeIssuesTicketThenResumes) {
  TicketRig rig;
  // Connection 1: full handshake; the server issues a NewSessionTicket.
  {
    Engine client(rig.client_cfg(1));
    Engine server(rig.server_cfg(2));
    client.start();
    pump(client, server);
    ASSERT_TRUE(client.handshake_done()) << client.error_message();
    ASSERT_FALSE(client.resumed());
  }
  const auto cached = rig.client_cache.lookup_by_peer("tickets.example");
  ASSERT_TRUE(cached.has_value());
  ASSERT_FALSE(cached->ticket.empty());

  // Connection 2: the server holds NO session cache — the ticket alone
  // restores the session (that is the point of tickets).
  {
    Engine client(rig.client_cfg(11));
    Engine server(rig.server_cfg(12));
    client.start();
    pump(client, server);
    ASSERT_TRUE(client.handshake_done()) << client.error_message();
    ASSERT_TRUE(server.handshake_done()) << server.error_message();
    EXPECT_TRUE(client.resumed());
    EXPECT_TRUE(server.resumed());
    client.send(to_bytes(std::string_view("ticket data")));
    pump(client, server);
    EXPECT_EQ(mbtls::to_string(server.take_plaintext()), "ticket data");
  }
}

TEST(TlsTickets, WrongTicketKeyFallsBackToFullHandshake) {
  TicketRig rig;
  {
    Engine client(rig.client_cfg(21));
    Engine server(rig.server_cfg(22));
    client.start();
    pump(client, server);
    ASSERT_TRUE(client.handshake_done());
  }
  // A different server instance with a rotated ticket key cannot decrypt
  // the ticket; it must fall back to a full handshake (and issue a fresh
  // ticket under the new key).
  Config scfg = rig.server_cfg(32);
  scfg.ticket_key = crypto::Drbg("rotated-key", 1).bytes(32);
  Engine client(rig.client_cfg(31));
  Engine server(scfg);
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  EXPECT_FALSE(client.resumed());
  // The fresh ticket (under the rotated key) replaced the stale one.
  const auto cached = rig.client_cache.lookup_by_peer("tickets.example");
  ASSERT_TRUE(cached.has_value());
  EXPECT_FALSE(cached->ticket.empty());
}

TEST(TlsTickets, TamperedTicketRejectedGracefully) {
  TicketRig rig;
  {
    Engine client(rig.client_cfg(41));
    Engine server(rig.server_cfg(42));
    client.start();
    pump(client, server);
    ASSERT_TRUE(client.handshake_done());
  }
  // Corrupt the cached ticket.
  auto cached = rig.client_cache.lookup_by_peer("tickets.example");
  ASSERT_TRUE(cached.has_value());
  cached->ticket[cached->ticket.size() / 2] ^= 1;
  rig.client_cache.store_by_peer("tickets.example", *cached);

  Engine client(rig.client_cfg(51));
  Engine server(rig.server_cfg(52));
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  EXPECT_FALSE(client.resumed());  // fell back to a full handshake
}

TEST(TlsTickets, EnclaveSealedTickets) {
  // An attested server seals tickets with its enclave sealing key: no
  // ticket_key ever exists outside the enclave, and a different enclave
  // (other code, or another machine) cannot decrypt them.
  sgx::Platform platform;
  sgx::Enclave& enclave = platform.launch("ticket-server-v1");
  TicketRig rig;

  auto server_cfg = [&](std::uint64_t seed, sgx::Enclave* enc) {
    Config cfg = rig.server_cfg(seed);
    cfg.ticket_key.clear();
    cfg.enclave = enc;
    return cfg;
  };
  {
    Engine client(rig.client_cfg(61));
    Engine server(server_cfg(62, &enclave));
    client.start();
    pump(client, server);
    ASSERT_TRUE(client.handshake_done()) << client.error_message();
  }
  const auto cached = rig.client_cache.lookup_by_peer("tickets.example");
  ASSERT_TRUE(cached && !cached->ticket.empty());
  // The platform adversary sees the ticket on the wire but cannot open it,
  // and neither can different enclave code.
  sgx::Enclave& other_code = platform.launch("ticket-server-v2");
  EXPECT_FALSE(other_code.unseal(cached->ticket).has_value());

  // The same enclave resumes.
  {
    Engine client(rig.client_cfg(71));
    Engine server(server_cfg(72, &enclave));
    client.start();
    pump(client, server);
    ASSERT_TRUE(client.handshake_done()) << client.error_message();
    EXPECT_TRUE(client.resumed());
  }
}

TEST(TlsTickets, TicketStateCodecRoundTrip) {
  SessionState state;
  state.suite = CipherSuite::kEcdheRsaAes256GcmSha384;
  state.session_id = Bytes(32, 5);
  state.master_secret = Bytes(48, 6);
  state.mbtls_key_material = Bytes(17, 7);
  const auto back = decode_ticket_state(encode_ticket_state(state));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->suite, state.suite);
  EXPECT_EQ(back->master_secret, state.master_secret);
  EXPECT_EQ(back->mbtls_key_material, state.mbtls_key_material);
  EXPECT_FALSE(decode_ticket_state(Bytes(3, 1)).has_value());
}

TEST(TlsTickets, ServerWithoutTicketsIgnoresOffer) {
  TicketRig rig;
  Config scfg = rig.server_cfg(82);
  scfg.enable_session_tickets = false;
  Engine client(rig.client_cfg(81));  // offers empty ticket extension
  Engine server(scfg);
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done()) << client.error_message();
  EXPECT_FALSE(client.resumed());
  // No ticket issued: the cache entry (ID-based) has no ticket bytes.
  const auto cached = rig.client_cache.lookup_by_peer("tickets.example");
  ASSERT_TRUE(cached.has_value());
  EXPECT_TRUE(cached->ticket.empty());
}

}  // namespace
}  // namespace mbtls::tls
