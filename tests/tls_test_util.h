// Shared helpers for TLS and mbTLS tests: a process-wide test CA / keys
// (RSA keygen is expensive) and an in-memory pump that shuttles bytes
// between two engines until quiescence.
#pragma once

#include "tls/engine.h"
#include "x509/certificate.h"

namespace mbtls::tls::testing {

inline crypto::Drbg& shared_rng() {
  static crypto::Drbg rng("tls-test-shared", 0);
  return rng;
}

inline const x509::CertificateAuthority& test_ca() {
  static const x509::CertificateAuthority ca =
      x509::CertificateAuthority::create("mbTLS Test Root", x509::KeyType::kEcdsaP256,
                                         shared_rng());
  return ca;
}

struct ServerIdentity {
  std::shared_ptr<x509::PrivateKey> key;
  std::vector<x509::Certificate> chain;
};

/// Issue a fresh server identity signed by the shared test CA.
inline ServerIdentity make_identity(const std::string& cn,
                                    x509::KeyType type = x509::KeyType::kEcdsaP256) {
  ServerIdentity id;
  // 1024-bit RSA keeps the RSA-suite tests fast; benches use 2048.
  id.key = std::make_shared<x509::PrivateKey>(
      x509::PrivateKey::generate(type, shared_rng(), /*rsa_bits=*/1024));
  x509::CertRequest req;
  req.subject_cn = cn;
  req.san_dns = {cn};
  req.not_before = 0;
  req.not_after = 2524607999;
  req.key = id.key->public_key();
  id.chain = {test_ca().issue(req, shared_rng())};
  return id;
}

/// Shuttle bytes between two engines until neither produces output.
/// Returns the number of pump iterations.
inline int pump(Engine& a, Engine& b, int max_iters = 50) {
  int iters = 0;
  for (; iters < max_iters; ++iters) {
    const Bytes from_a = a.take_output();
    const Bytes from_b = b.take_output();
    if (from_a.empty() && from_b.empty()) break;
    if (!from_a.empty()) b.feed(from_a);
    if (!from_b.empty()) a.feed(from_b);
  }
  return iters;
}

}  // namespace mbtls::tls::testing
