// SGX simulation: measurement, memory isolation (the adversary view),
// attestation quotes, sealing, and transition accounting.
#include <gtest/gtest.h>

#include <chrono>

#include "sgx/attestation.h"
#include "sgx/enclave.h"
#include "util/hex.h"

namespace mbtls::sgx {
namespace {

TEST(Sgx, MeasurementDependsOnCodeAndConfig) {
  const Bytes m1 = measure("mbox-proxy-v1");
  const Bytes m2 = measure("mbox-proxy-v2");
  const Bytes m3 = measure("mbox-proxy-v1", to_bytes(std::string_view("strict")));
  EXPECT_NE(m1, m2);
  EXPECT_NE(m1, m3);
  EXPECT_EQ(m1, measure("mbox-proxy-v1"));
  EXPECT_EQ(m1.size(), 32u);
}

TEST(Sgx, UntrustedMemoryIsVisibleToAdversary) {
  Platform platform;
  const Bytes secret = to_bytes(std::string_view("super-secret-session-key"));
  platform.untrusted_memory().put("tls/session_key", secret);
  const auto hits = platform.adversary_find_secret(secret);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], "tls/session_key");
}

TEST(Sgx, EnclaveMemoryIsOpaqueToAdversary) {
  Platform platform;
  Enclave& enclave = platform.launch("mbox-proxy-v1");
  const Bytes secret = to_bytes(std::string_view("super-secret-session-key"));
  enclave.memory().put("session_key", secret);

  // The region exists in the adversary view but only as ciphertext.
  const auto view = platform.adversary_memory_view();
  bool found_region = false;
  for (const auto& region : view) {
    if (region.name == "mbox-proxy-v1/session_key") {
      found_region = true;
      EXPECT_TRUE(region.encrypted);
      EXPECT_NE(region.contents, secret);
    }
  }
  EXPECT_TRUE(found_region);
  EXPECT_TRUE(platform.adversary_find_secret(secret).empty());

  // Code "inside" the enclave still reads it fine.
  EXPECT_EQ(enclave.memory().get("session_key"), secret);
}

TEST(Sgx, QuoteVerifies) {
  Platform platform;
  Enclave& enclave = platform.launch("mbox-proxy-v1");
  const Bytes handshake_hash = to_bytes(std::string_view("transcript-hash-xyz"));
  const auto quote = enclave.quote(handshake_hash);
  EXPECT_EQ(quote.measurement, measure("mbox-proxy-v1"));
  EXPECT_EQ(quote.report_data.size(), 64u);
  EXPECT_TRUE(verify_quote(quote.measurement, quote.report_data, quote.signature));
}

TEST(Sgx, QuoteRejectsTampering) {
  Platform platform;
  Enclave& enclave = platform.launch("mbox-proxy-v1");
  auto quote = enclave.quote(to_bytes(std::string_view("rd")));
  // Tampered measurement (pretend different code was measured).
  Bytes bad_measurement = quote.measurement;
  bad_measurement[0] ^= 1;
  EXPECT_FALSE(verify_quote(bad_measurement, quote.report_data, quote.signature));
  // Tampered report data (replay against a different handshake).
  Bytes bad_rd = quote.report_data;
  bad_rd[0] ^= 1;
  EXPECT_FALSE(verify_quote(quote.measurement, bad_rd, quote.signature));
}

TEST(Sgx, QuoteCodecRoundTrip) {
  Platform platform;
  Enclave& enclave = platform.launch("codec-test");
  const auto quote = enclave.quote(to_bytes(std::string_view("data")));
  const Bytes wire = quote.encode();
  const auto decoded = Enclave::QuoteData::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->measurement, quote.measurement);
  EXPECT_EQ(decoded->report_data, quote.report_data);
  EXPECT_EQ(decoded->signature, quote.signature);
  EXPECT_FALSE(Enclave::QuoteData::decode(ByteView(wire).first(wire.size() - 1)).has_value());
  EXPECT_FALSE(Enclave::QuoteData::decode(Bytes(3, 0)).has_value());
}

TEST(Sgx, SealUnsealRoundTrip) {
  Platform platform;
  Enclave& enclave = platform.launch("sealer");
  const Bytes data = to_bytes(std::string_view("ticket key material"));
  const Bytes sealed = enclave.seal(data);
  EXPECT_EQ(enclave.unseal(sealed), data);
  // Distinct seals of the same data differ (IV counter).
  EXPECT_NE(enclave.seal(data), sealed);
}

TEST(Sgx, SealedDataBoundToMeasurementAndPlatform) {
  Platform platform;
  Enclave& enclave_a = platform.launch("code-a");
  Enclave& enclave_b = platform.launch("code-b");
  const Bytes sealed = enclave_a.seal(to_bytes(std::string_view("secret")));
  EXPECT_FALSE(enclave_b.unseal(sealed).has_value());  // different code

  Platform other_platform(42);
  Enclave& same_code_elsewhere = other_platform.launch("code-a");
  EXPECT_FALSE(same_code_elsewhere.unseal(sealed).has_value());  // different CPU
}

TEST(Sgx, SealDetectsTampering) {
  Platform platform;
  Enclave& enclave = platform.launch("sealer");
  Bytes sealed = enclave.seal(to_bytes(std::string_view("payload")));
  sealed[sealed.size() / 2] ^= 1;
  EXPECT_FALSE(enclave.unseal(sealed).has_value());
}

TEST(Sgx, EcallCountsTransitions) {
  Platform platform;
  platform.set_transition_cost(10);  // keep the test fast
  Enclave& enclave = platform.launch("worker");
  const int result = enclave.ecall([] { return 7; });
  EXPECT_EQ(result, 7);
  EXPECT_EQ(enclave.transitions(), 2u);  // enter + leave
  enclave.ecall([] {});
  EXPECT_EQ(enclave.transitions(), 4u);
  EXPECT_EQ(platform.total_transitions(), 4u);
}

TEST(Sgx, TransitionCostBurnsTime) {
  Platform cheap(1), expensive(1);
  cheap.set_transition_cost(0);
  expensive.set_transition_cost(2'000'000);
  Enclave& fast = cheap.launch("w");
  Enclave& slow = expensive.launch("w");
  const auto time_of = [](Enclave& e) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 10; ++i) e.ecall([] {});
    return std::chrono::steady_clock::now() - start;
  };
  EXPECT_LT(time_of(fast), time_of(slow));
}

TEST(Sgx, AttestationKeyIsStable) {
  const auto& k1 = attestation_service_public_key();
  const auto& k2 = attestation_service_public_key();
  EXPECT_EQ(k1.x, k2.x);
}

}  // namespace
}  // namespace mbtls::sgx
