// TLS engine negative paths: out-of-order handshake messages, fragmented
// messages, degenerate key-exchange values, and state-machine misuse.
#include <gtest/gtest.h>

#include "tests/tls_test_util.h"
#include "tls/dh.h"

namespace mbtls::tls {
namespace {

using testing::make_identity;
using testing::pump;
using testing::test_ca;

Config base_client(const std::string& host, std::uint64_t seed = 1) {
  Config cfg;
  cfg.trust_anchors = {test_ca().root()};
  cfg.server_name = host;
  cfg.rng_seed = seed;
  return cfg;
}

Config base_server(const testing::ServerIdentity& id, std::uint64_t seed = 2) {
  Config cfg;
  cfg.is_client = false;
  cfg.private_key = id.key;
  cfg.certificate_chain = id.chain;
  cfg.rng_seed = seed;
  return cfg;
}

TEST(TlsNegative, HandshakeMessageSpanningRecords) {
  // Split the ClientHello's bytes across many tiny records: the server's
  // reassembler must still produce one message.
  const auto id = make_identity("frag.example");
  Engine client(base_client("frag.example"));
  Engine server(base_server(id));
  client.start();
  const Bytes flight = client.take_output();
  // Re-frame: strip the record header, re-emit payload in 10-byte records.
  ASSERT_GE(flight.size(), kRecordHeaderSize);
  const ByteView payload = ByteView(flight).subspan(kRecordHeaderSize);
  for (std::size_t off = 0; off < payload.size(); off += 10) {
    const std::size_t n = std::min<std::size_t>(10, payload.size() - off);
    server.feed(frame_plaintext_record(ContentType::kHandshake, payload.subspan(off, n)));
  }
  EXPECT_FALSE(server.failed()) << server.error_message();
  // Server produced its flight: handshake proceeded.
  EXPECT_FALSE(server.take_output().empty());
}

TEST(TlsNegative, ServerHelloBeforeClientHelloRejected) {
  const auto id = make_identity("order.example");
  Engine server(base_server(id));
  ServerHello bogus;
  bogus.random = Bytes(32, 1);
  bogus.cipher_suite = static_cast<std::uint16_t>(CipherSuite::kEcdheEcdsaAes256GcmSha384);
  server.feed(frame_plaintext_record(
      ContentType::kHandshake, wrap_handshake(HandshakeType::kServerHello, bogus.encode_body())));
  EXPECT_TRUE(server.failed());
  EXPECT_EQ(server.last_alert(), AlertDescription::kUnexpectedMessage);
}

TEST(TlsNegative, DoubleClientHelloRejected) {
  const auto id = make_identity("double.example");
  Engine client(base_client("double.example"));
  Engine server(base_server(id));
  client.start();
  const Bytes hello = client.take_output();
  server.feed(hello);
  (void)server.take_output();
  server.feed(hello);  // replayed ClientHello mid-handshake
  EXPECT_TRUE(server.failed());
}

TEST(TlsNegative, CcsBeforeKeysRejected) {
  const auto id = make_identity("ccs.example");
  Engine server(base_server(id));
  Engine client(base_client("ccs.example"));
  client.start();
  server.feed(client.take_output());
  (void)server.take_output();
  server.feed(frame_plaintext_record(ContentType::kChangeCipherSpec, Bytes{1}));
  EXPECT_TRUE(server.failed());
  EXPECT_EQ(server.last_alert(), AlertDescription::kUnexpectedMessage);
}

TEST(TlsNegative, DegenerateDhPublicValueRejected) {
  const DhGroup& group = default_dh_group();
  crypto::Drbg rng("dh-degenerate", 0);
  const auto kp = dh_generate(group, rng);
  EXPECT_THROW(dh_shared_secret(group, kp.private_key, bn::BigInt(0).to_bytes(1)),
               std::invalid_argument);
  EXPECT_THROW(dh_shared_secret(group, kp.private_key, bn::BigInt(1).to_bytes(1)),
               std::invalid_argument);
  EXPECT_THROW(dh_shared_secret(group, kp.private_key, (group.p - bn::BigInt(1)).to_bytes()),
               std::invalid_argument);
  EXPECT_THROW(dh_shared_secret(group, kp.private_key, group.p.to_bytes()),
               std::invalid_argument);
}

TEST(TlsNegative, DegenerateEcPointInClientKeyExchangeFailsHandshake) {
  const auto id = make_identity("ecdeg.example");
  Engine client(base_client("ecdeg.example"));
  Engine server(base_server(id));
  client.start();
  server.feed(client.take_output());
  const Bytes server_flight = server.take_output();
  client.feed(server_flight);
  // Intercept the client's flight 3 and corrupt the ClientKeyExchange point.
  Bytes flight3 = client.take_output();
  // CKE is the first record: handshake record containing type 16.
  RecordReader reader;
  reader.feed(flight3);
  Bytes rewritten;
  bool corrupted = false;
  while (auto raw = reader.take_raw()) {
    if (!corrupted && (*raw)[0] == static_cast<std::uint8_t>(ContentType::kHandshake) &&
        (*raw)[kRecordHeaderSize] == static_cast<std::uint8_t>(HandshakeType::kClientKeyExchange)) {
      // Zero the point bytes (invalid encoding).
      for (std::size_t i = kRecordHeaderSize + 5; i < raw->size(); ++i) (*raw)[i] = 0;
      corrupted = true;
    }
    append(rewritten, *raw);
  }
  ASSERT_TRUE(corrupted);
  server.feed(rewritten);
  EXPECT_TRUE(server.failed());
}

TEST(TlsNegative, SendOnUnestablishedEngineThrows) {
  Engine client(base_client("early.example"));
  EXPECT_THROW(client.send(Bytes{1}), std::logic_error);
  EXPECT_THROW(client.connection_keys(), std::logic_error);
  EXPECT_THROW(client.suite(), std::logic_error);
}

TEST(TlsNegative, ServerWithoutKeyFailsCleanly) {
  Config cfg;
  cfg.is_client = false;  // no private key / chain
  Engine server(cfg);
  Engine client(base_client("nokey.example"));
  client.start();
  server.feed(client.take_output());
  EXPECT_TRUE(server.failed());
  EXPECT_EQ(server.last_alert(), AlertDescription::kInternalError);
}

TEST(TlsNegative, EngineIgnoresInputAfterFailure) {
  const auto id = make_identity("sticky.example");
  Engine server(base_server(id));
  server.feed(frame_plaintext_record(ContentType::kChangeCipherSpec, Bytes{1}));
  ASSERT_TRUE(server.failed());
  const auto alert = server.last_alert();
  // Subsequent valid-looking input must not resurrect the session.
  Engine client(base_client("sticky.example"));
  client.start();
  server.feed(client.take_output());
  EXPECT_TRUE(server.failed());
  EXPECT_EQ(server.last_alert(), alert);
}

TEST(TlsNegative, WarningAlertDoesNotKillSession) {
  const auto id = make_identity("warn.example");
  Engine client(base_client("warn.example"));
  Engine server(base_server(id));
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done());
  // Deliver an encrypted warning-level alert (unsupported_extension-ish).
  // Simplest: craft from a twin engine is complex; instead verify that the
  // plaintext-alert path during handshake tolerates warnings.
  Engine server2(base_server(id, 9));
  Bytes warning;
  put_u8(warning, static_cast<std::uint8_t>(AlertLevel::kWarning));
  put_u8(warning, 111);  // some non-fatal description
  server2.feed(frame_plaintext_record(ContentType::kAlert, warning));
  EXPECT_FALSE(server2.failed());
}

TEST(TlsNegative, RenegotiationRequestRejected) {
  // HelloRequest (renegotiation) is unsupported and must fail closed.
  const auto id = make_identity("reneg.example");
  Engine client(base_client("reneg.example"));
  Engine server(base_server(id));
  client.start();
  pump(client, server);
  ASSERT_TRUE(client.handshake_done());
  // A HelloRequest must arrive under record protection post-handshake; a
  // plaintext one is equally invalid. Either way: no renegotiation.
  client.feed(frame_plaintext_record(ContentType::kHandshake,
                                     wrap_handshake(HandshakeType::kHelloRequest, {})));
  EXPECT_TRUE(client.failed());
}

}  // namespace
}  // namespace mbtls::tls
