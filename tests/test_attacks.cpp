// The Table-1 threat matrix as assertions: every attack must land exactly
// where the paper says it lands for each protocol.
#include <gtest/gtest.h>

#include "attacks/attacks.h"

namespace mbtls::attacks {
namespace {

TEST(Attacks, WireEavesdroppingDefeatedEverywhere) {
  // All four configurations encrypt on the wire.
  EXPECT_FALSE(wire_eavesdrop(Protocol::kNaiveKeyShare));
  EXPECT_FALSE(wire_eavesdrop(Protocol::kSplitTls));
  EXPECT_FALSE(wire_eavesdrop(Protocol::kMbtlsNoSgx));
  EXPECT_FALSE(wire_eavesdrop(Protocol::kMbtls));
}

TEST(Attacks, MipMemoryReadOnlyDefeatedBySgx) {
  // Without a secure execution environment, the infrastructure provider
  // reads the session keys straight out of middlebox RAM.
  EXPECT_TRUE(mip_reads_keys_from_memory(Protocol::kNaiveKeyShare));
  EXPECT_TRUE(mip_reads_keys_from_memory(Protocol::kSplitTls));
  EXPECT_TRUE(mip_reads_keys_from_memory(Protocol::kMbtlsNoSgx));
  EXPECT_FALSE(mip_reads_keys_from_memory(Protocol::kMbtls));
}

TEST(Attacks, RecordCompareLeaksOnlyUnderNaive) {
  // P1C: same key on both hops -> identical ciphertext when unmodified.
  EXPECT_TRUE(record_compare(Protocol::kNaiveKeyShare));
  EXPECT_FALSE(record_compare(Protocol::kMbtlsNoSgx));
  EXPECT_FALSE(record_compare(Protocol::kMbtls));
}

TEST(Attacks, ForwardSecrecyHoldsEverywhere) {
  // All configurations negotiate (EC)DHE: a leaked long-term key does not
  // decrypt recorded traffic.
  EXPECT_FALSE(decrypt_recording_with_leaked_key(Protocol::kNaiveKeyShare));
  EXPECT_FALSE(decrypt_recording_with_leaked_key(Protocol::kSplitTls));
  EXPECT_FALSE(decrypt_recording_with_leaked_key(Protocol::kMbtls));
}

TEST(Attacks, OnWireModificationDetectedEverywhere) {
  EXPECT_FALSE(modify_on_wire(Protocol::kNaiveKeyShare));
  EXPECT_FALSE(modify_on_wire(Protocol::kSplitTls));
  EXPECT_FALSE(modify_on_wire(Protocol::kMbtlsNoSgx));
  EXPECT_FALSE(modify_on_wire(Protocol::kMbtls));
}

TEST(Attacks, ReplayDetectedEverywhere) {
  EXPECT_FALSE(replay_on_wire(Protocol::kNaiveKeyShare));
  EXPECT_FALSE(replay_on_wire(Protocol::kMbtls));
}

TEST(Attacks, PathSkipOnlyPossibleUnderNaive) {
  // P4: unique per-hop keys make skipped records unverifiable; with a single
  // end-to-end key the skip goes unnoticed.
  EXPECT_TRUE(skip_middlebox(Protocol::kNaiveKeyShare));
  EXPECT_FALSE(skip_middlebox(Protocol::kMbtlsNoSgx));
  EXPECT_FALSE(skip_middlebox(Protocol::kMbtls));
}

TEST(Attacks, WrongCodeOnlyDetectedWithAttestation) {
  EXPECT_TRUE(run_wrong_middlebox_code(Protocol::kNaiveKeyShare));
  EXPECT_TRUE(run_wrong_middlebox_code(Protocol::kSplitTls));
  EXPECT_TRUE(run_wrong_middlebox_code(Protocol::kMbtlsNoSgx));
  EXPECT_FALSE(run_wrong_middlebox_code(Protocol::kMbtls));
}

TEST(Attacks, StaleAttestationQuoteRejected) { EXPECT_FALSE(replay_attestation()); }

TEST(Attacks, ServerImpersonationOnlyWorksUnderSplitTls) {
  EXPECT_FALSE(impersonate_server(Protocol::kNaiveKeyShare));
  EXPECT_FALSE(impersonate_server(Protocol::kMbtls));
  // The paper's [23] finding: with split TLS the client cannot check the
  // real server; a proxy that skips verification hands it to an impostor.
  EXPECT_TRUE(impersonate_server(Protocol::kSplitTls));
}

TEST(Attacks, CachePoisoningIsTheDocumentedLimitation) {
  // §4.2: mbTLS intentionally trades this off; the attack succeeds.
  EXPECT_TRUE(cache_poisoning());
}

TEST(Attacks, FullMatrixShapeMatchesTable1) {
  const auto results = run_all();
  // 9 attacks x 4 protocols + 2 mbTLS-specific rows.
  EXPECT_EQ(results.size(), 9u * 4u + 2u);
  // mbTLS+SGX defends every Table-1 threat (the only successes allowed are
  // the documented §4.2 cache-poisoning limitation).
  for (const auto& r : results) {
    if (r.protocol != Protocol::kMbtls) continue;
    if (r.threat.find("known limitation") != std::string::npos) {
      EXPECT_TRUE(r.attack_succeeded);
    } else {
      EXPECT_FALSE(r.attack_succeeded) << r.threat;
    }
  }
}

}  // namespace
}  // namespace mbtls::attacks
