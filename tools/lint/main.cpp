// mbtls-lint: repo-specific secret-hygiene static analyzer.
//
// Usage:
//   mbtls-lint [--rule <id>]... [--list-rules] <file-or-dir>...
//
// Directories are walked recursively for C++ sources; subdirectories named
// "fixtures" or starting with "build" are skipped so `mbtls-lint src tests`
// from the repo root never scans build trees or the linter's own known-bad
// fixture files (point it AT the fixtures dir to lint them).
//
// Output is one diagnostic per line, `file:line: rule-id: message`, sorted.
// Exit status: 0 clean, 1 violations found, 2 usage or I/O error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.h"
#include "rules.h"

namespace fs = std::filesystem;
using namespace mbtls::lint;

namespace {

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".h" || ext == ".hpp" || ext == ".cc";
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "fixtures" || name.rfind("build", 0) == 0 || name == ".git";
}

void collect(const fs::path& root, std::vector<fs::path>& out) {
  if (fs::is_regular_file(root)) {
    if (is_cpp_source(root)) out.push_back(root);
    return;
  }
  if (!fs::is_directory(root)) throw std::runtime_error("no such path: " + root.string());
  fs::recursive_directory_iterator it(root), end;
  while (it != end) {
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
    } else if (it->is_regular_file() && is_cpp_source(it->path())) {
      out.push_back(it->path());
    }
    ++it;
  }
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> only_rules;
  std::vector<fs::path> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : rule_catalogue()) std::cout << r.id << ": " << r.summary << "\n";
      return 0;
    }
    if (arg == "--rule") {
      if (i + 1 >= argc) {
        std::cerr << "mbtls-lint: --rule needs an argument\n";
        return 2;
      }
      only_rules.emplace_back(argv[++i]);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mbtls-lint: unknown option " << arg << "\n";
      return 2;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "usage: mbtls-lint [--rule <id>]... [--list-rules] <file-or-dir>...\n";
    return 2;
  }
  for (const auto& id : only_rules) {
    bool known = false;
    for (const auto& r : rule_catalogue()) known = known || r.id == id;
    if (!known) {
      std::cerr << "mbtls-lint: unknown rule '" << id << "' (see --list-rules)\n";
      return 2;
    }
  }

  try {
    std::vector<fs::path> paths;
    for (const auto& r : roots) collect(r, paths);

    std::vector<LexedFile> files;
    files.reserve(paths.size());
    // generic_string() so diagnostics (and the path-based rule selection)
    // always see forward slashes.
    for (const auto& p : paths) files.push_back(lex(p.generic_string(), read_file(p)));

    const std::vector<Finding> findings = run_rules(files, only_rules);
    for (const auto& f : findings)
      std::cout << f.file << ":" << f.line << ": " << f.rule << ": " << f.message << "\n";
    if (!findings.empty()) {
      std::cerr << "mbtls-lint: " << findings.size() << " violation"
                << (findings.size() == 1 ? "" : "s") << " in " << files.size() << " files\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "mbtls-lint: " << e.what() << "\n";
    return 2;
  }
}
