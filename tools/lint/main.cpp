// mbtls-lint: repo-specific secret-hygiene static analyzer.
//
// Usage:
//   mbtls-lint [--rule <id>]... [--json] [--baseline <file>] [--list-rules]
//              <file-or-dir>...
//
// Directories are walked recursively for C++ sources; subdirectories named
// "fixtures" or starting with "build" are skipped so `mbtls-lint src tests`
// from the repo root never scans build trees or the linter's own known-bad
// fixture files (point it AT the fixtures dir to lint them).
//
// Output is one diagnostic per line, `file:line: rule-id: message`, sorted;
// with --json, a JSON array of {file, line, rule, symbol, message} objects.
// A --baseline file holds reviewed suppressions, one per line:
//   <rule-id> <file-suffix> [<symbol>] -- <justification>
// Findings matching an entry are suppressed (reported to stderr as counts);
// unused entries get a stderr warning so the baseline burns down over time.
// Exit status: 0 clean, 1 non-baselined violations, 2 usage or I/O error.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.h"
#include "rules.h"

namespace fs = std::filesystem;
using namespace mbtls::lint;

namespace {

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".h" || ext == ".hpp" || ext == ".cc";
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "fixtures" || name.rfind("build", 0) == 0 || name == ".git";
}

void collect(const fs::path& root, std::vector<fs::path>& out) {
  if (fs::is_regular_file(root)) {
    if (is_cpp_source(root)) out.push_back(root);
    return;
  }
  if (!fs::is_directory(root)) throw std::runtime_error("no such path: " + root.string());
  fs::recursive_directory_iterator it(root), end;
  while (it != end) {
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
    } else if (it->is_regular_file() && is_cpp_source(it->path())) {
      out.push_back(it->path());
    }
    ++it;
  }
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ----------------------------------------------------- suppression baseline

struct BaselineEntry {
  std::string rule;
  std::string file_suffix;
  std::string symbol;  // optional: "" matches any symbol
  std::string reason;
  int line = 0;
  bool used = false;
};

std::vector<BaselineEntry> load_baseline(const fs::path& p) {
  std::ifstream in(p);
  if (!in) throw std::runtime_error("cannot read baseline " + p.string());
  std::vector<BaselineEntry> out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    BaselineEntry e;
    e.line = lineno;
    const std::size_t dashes = line.find(" -- ");
    if (dashes != std::string::npos) e.reason = line.substr(dashes + 4);
    std::istringstream head(line.substr(0, dashes));
    std::string sym;
    if (!(head >> e.rule >> e.file_suffix)) {
      throw std::runtime_error("baseline " + p.string() + ":" + std::to_string(lineno) +
                               ": expected `<rule> <file-suffix> [<symbol>] -- <reason>`");
    }
    if (head >> sym) e.symbol = sym;
    out.push_back(std::move(e));
  }
  return out;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool baseline_matches(BaselineEntry& e, const Finding& f) {
  if (f.rule != e.rule || !ends_with(f.file, e.file_suffix)) return false;
  if (!e.symbol.empty() && f.symbol != e.symbol) return false;
  e.used = true;
  return true;
}

// ---------------------------------------------------------------- reporting

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const std::vector<Finding>& findings) {
  std::cout << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::cout << (i == 0 ? "\n" : ",\n")
              << "  {\"file\": \"" << json_escape(f.file) << "\", \"line\": " << f.line
              << ", \"rule\": \"" << json_escape(f.rule) << "\", \"symbol\": \""
              << json_escape(f.symbol) << "\", \"message\": \"" << json_escape(f.message)
              << "\"}";
  }
  std::cout << (findings.empty() ? "]\n" : "\n]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> only_rules;
  std::vector<fs::path> roots;
  bool json = false;
  fs::path baseline_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : rule_catalogue()) std::cout << r.id << ": " << r.summary << "\n";
      return 0;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--rule" || arg == "--baseline") {
      if (i + 1 >= argc) {
        std::cerr << "mbtls-lint: " << arg << " needs an argument\n";
        return 2;
      }
      if (arg == "--rule") {
        only_rules.emplace_back(argv[++i]);
      } else {
        baseline_path = argv[++i];
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mbtls-lint: unknown option " << arg << "\n";
      return 2;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "usage: mbtls-lint [--rule <id>]... [--list-rules] <file-or-dir>...\n";
    return 2;
  }
  for (const auto& id : only_rules) {
    bool known = false;
    for (const auto& r : rule_catalogue()) known = known || r.id == id;
    if (!known) {
      std::cerr << "mbtls-lint: unknown rule '" << id << "' (see --list-rules)\n";
      return 2;
    }
  }

  try {
    std::vector<fs::path> paths;
    for (const auto& r : roots) collect(r, paths);

    std::vector<LexedFile> files;
    files.reserve(paths.size());
    // generic_string() so diagnostics (and the path-based rule selection)
    // always see forward slashes.
    for (const auto& p : paths) files.push_back(lex(p.generic_string(), read_file(p)));

    const std::vector<Finding> all = run_rules(files, only_rules);

    std::vector<BaselineEntry> baseline;
    if (!baseline_path.empty()) baseline = load_baseline(baseline_path);
    std::vector<Finding> findings;
    std::size_t suppressed = 0;
    for (const auto& f : all) {
      bool matched = false;
      for (auto& e : baseline) matched = baseline_matches(e, f) || matched;
      if (matched) {
        ++suppressed;
      } else {
        findings.push_back(f);
      }
    }
    for (const auto& e : baseline) {
      if (!e.used) {
        std::cerr << "mbtls-lint: baseline:" << e.line << ": unused entry `" << e.rule << " "
                  << e.file_suffix << "` — remove it, the finding is gone\n";
      }
    }

    if (json) {
      print_json(findings);
    } else {
      for (const auto& f : findings)
        std::cout << f.file << ":" << f.line << ": " << f.rule << ": " << f.message << "\n";
    }
    if (!findings.empty() || suppressed > 0) {
      std::map<std::string, int> per_rule;
      for (const auto& f : findings) ++per_rule[f.rule];
      std::cerr << "mbtls-lint: " << findings.size() << " violation"
                << (findings.size() == 1 ? "" : "s") << " in " << files.size() << " files";
      if (suppressed > 0) std::cerr << " (" << suppressed << " baselined)";
      std::cerr << "\n";
      for (const auto& [rule, n] : per_rule) std::cerr << "  " << rule << ": " << n << "\n";
    }
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "mbtls-lint: " << e.what() << "\n";
    return 2;
  }
}
