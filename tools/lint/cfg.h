// Basic-block control-flow graphs for mbtls-lint's dataflow layer.
//
// A lightweight per-function parser over the lexer's token stream: it finds
// function definitions (free functions, methods, constructors — anything of
// the shape `name(...) ... {`), extracts their parameter names, and splits
// the body into basic blocks connected by edges for if/else, loops, switch,
// early returns, throws, break/continue and try/catch. It is deliberately
// NOT a C++ parser: statements stay as raw token spans and the taint engine
// (dataflow.h) interprets them with token-shape heuristics. What the CFG
// adds over the old single-pass rules is *paths*: a leak on one early-return
// arm, or a merge point where a tainted and a clean assignment join, is
// visible here and invisible to a flat token scan.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.h"

namespace mbtls::lint {

/// One statement: a half-open token range in the owning file's stream.
/// Control statements contribute their *header* only (the `if (cond)` part);
/// their controlled statements live in successor blocks.
struct Stmt {
  enum class Kind {
    kPlain,     // expression / declaration statement, `;`-terminated
    kCond,      // if/while/for/switch header (condition tokens included)
    kReturn,    // `return ...;` — block edge goes to the exit node
    kThrow,     // `throw ...;` — block edge goes to the throw-exit node
    kBreak,     // `break;`
    kContinue,  // `continue;`
  };
  Kind kind = Kind::kPlain;
  std::size_t begin = 0;  // token index, inclusive
  std::size_t end = 0;    // token index, exclusive
  int line = 0;           // line of the first token
};

struct Block {
  std::vector<Stmt> stmts;
  std::vector<int> succs;
};

struct Param {
  std::string name;
  int line = 0;
};

/// A function definition with its CFG. `blocks[entry]` is the entry block;
/// `exit_id` is a synthetic empty block every normal exit (return or falling
/// off the end) edges into; `throw_id` collects throw edges so unwind paths
/// are distinguishable from normal exits.
struct Cfg {
  std::string name;       // unqualified name ("seal")
  std::string qual_name;  // qualified spelling as written ("RecordWriter::seal")
  int line = 0;           // line of the name token
  std::vector<Param> params;
  std::vector<Block> blocks;
  int entry = 0;
  int exit_id = 0;
  int throw_id = 0;
  std::size_t body_begin = 0;  // token range of the braced body, braces excluded
  std::size_t body_end = 0;
};

/// Extract every function definition in `f` and build its CFG.
std::vector<Cfg> build_cfgs(const LexedFile& f);

/// Blocks reachable from `entry` (dataflow only propagates through these;
/// code after an unconditional return stays bottom and cannot leak).
std::vector<bool> reachable_blocks(const Cfg& cfg);

}  // namespace mbtls::lint
