#include "dataflow.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <set>

namespace mbtls::lint {

namespace {

// --------------------------------------------------------------- utilities

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokenKind::kPunct && t.text == s;
}

/// Index of the `)` matching the `(` at `open`, or `end` if unbalanced.
std::size_t close_paren(const std::vector<Token>& toks, std::size_t open, std::size_t end) {
  int depth = 0;
  for (std::size_t i = open; i < end; ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    if (is_punct(toks[i], ")") && --depth == 0) return i;
  }
  return end;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// True if `id` has the lowercase '_'-segment `seg` (digits stripped).
bool has_segment(const std::string& id, const std::string& seg) {
  std::string cur;
  for (char c : lower(id) + "_") {
    if (c == '_') {
      while (!cur.empty() && std::isdigit(static_cast<unsigned char>(cur.back())))
        cur.pop_back();
      if (cur == seg) return true;
      cur.clear();
    } else {
      cur += c;
    }
  }
  return false;
}

bool is_scratch_name(const std::string& id) { return has_segment(id, "scratch"); }

bool is_sanitizer_name(const std::string& s) {
  return s == "key_fingerprint" || s == "seal" || s == "seal_into";
}

bool is_wipe_name(const std::string& s) {
  return s == "secure_wipe" || s == "secure_wipe_object";
}

const std::set<std::string>& emitter_methods() {
  static const std::set<std::string> kSet = {"instant", "begin", "end", "counter"};
  return kSet;
}
const std::set<std::string>& queue_methods() {
  static const std::set<std::string> kSet = {"post", "try_post", "submit", "enqueue"};
  return kSet;
}
const std::set<std::string>& container_methods() {
  static const std::set<std::string> kSet = {"push_back", "insert", "emplace",
                                             "emplace_back", "put"};
  return kSet;
}
/// Receiver name segments that mark a container as long-lived/shared: a
/// secret copied into one of these outlives its session context.
const std::set<std::string>& longlived_segments() {
  static const std::set<std::string> kSet = {"cache", "pool", "log", "journal",
                                             "history", "registry"};
  return kSet;
}

bool is_view_type(const std::string& t) {
  return t == "ByteView" || t == "MutableByteView" || t == "span" || t == "Span" ||
         t == "string_view";
}
/// Owning byte-buffer types whose secret-named locals carry a wipe
/// obligation. Views/references are non-owning and exempt.
bool is_owning_buf_type(const std::string& t) {
  return t == "Bytes" || t == "vector" || t == "array";
}
/// x86 SIMD vector registers spilled to locals (the AES-NI backend keeps
/// round keys and GHASH key powers in these). Owning by-value storage, so
/// secret-named ones carry the same wipe obligation as byte buffers — but
/// only in files that include an intrinsic header (LexedFile::
/// has_intrinsic_include), where the name is certain to be Intel's type.
bool is_simd_vector_type(const std::string& t) {
  return t == "__m128i" || t == "__m256i" || t == "__m512i";
}

const std::set<std::string>& decl_keywords() {
  static const std::set<std::string> kSet = {
      "const", "constexpr", "static", "volatile", "unsigned", "signed",
      "long",  "short",     "struct", "class",    "typename", "thread_local",
      "mutable", "inline",  "register",
  };
  return kSet;
}

const char* kTraceNoSecret = "trace-no-secret";
const char* kQueueNoSecret = "queue-no-secret";
const char* kSecretEscape = "secret-escape";
const char* kWipeAllPaths = "wipe-all-paths";
const char* kDanglingSpan = "dangling-span";

// -------------------------------------------------------- abstract state

struct Taint {
  std::string origin;  // the secret this value derives from
  int line = 0;        // where the taint entered
};

struct SecretLocal {
  int line = 0;  // declaration line
};

struct ViewInfo {
  std::string source;  // the scratch buffer viewed into
  int line = 0;        // where the view was formed
  bool stale = false;  // scratch was recycled since
};

struct AbsState {
  bool reachable = false;
  std::map<std::string, Taint> taint;
  std::map<std::string, SecretLocal> secrets;
  std::map<std::string, ViewInfo> views;
  std::set<std::string> scratch_bufs;  // take_raw_into() targets

  /// May-join: union of facts; returns true if *this changed.
  bool join_from(const AbsState& o) {
    if (!o.reachable) return false;
    if (!reachable) {
      *this = o;
      return true;
    }
    bool changed = false;
    for (const auto& [k, v] : o.taint)
      if (taint.emplace(k, v).second) changed = true;
    for (const auto& [k, v] : o.secrets)
      if (secrets.emplace(k, v).second) changed = true;
    for (const auto& [k, v] : o.views) {
      auto [it, fresh] = views.emplace(k, v);
      if (fresh) {
        changed = true;
      } else if (v.stale && !it->second.stale) {
        it->second.stale = true;
        changed = true;
      }
    }
    for (const auto& s : o.scratch_bufs)
      if (scratch_bufs.insert(s).second) changed = true;
    return changed;
  }
};

// ----------------------------------------------- statement interpretation

/// A parsed declaration or assignment inside one statement.
struct DeclOrAssign {
  bool valid = false;
  bool is_decl = false;
  bool lhs_member = false;  // x.y = / this->y = / indexing
  bool compound = false;    // += and friends
  std::string name;         // declared/assigned variable ("" when lhs_member)
  int name_line = 0;
  std::string type_last;    // last type identifier for declarations
  bool type_ref_or_ptr = false;
  std::size_t rhs_begin = 0, rhs_end = 0;  // may be an empty range
};

/// The per-function engine: fixed-point taint propagation over the CFG,
/// then a report pass that replays transfers with converged block-entry
/// states and emits findings.
class FnTaint {
 public:
  FnTaint(const LexedFile& f, const Cfg& cfg, const Summaries& sums)
      : f_(f), toks_(f.tokens), cfg_(cfg), sums_(sums) {}

  void solve() {
    in_.assign(cfg_.blocks.size(), AbsState{});
    AbsState entry;
    entry.reachable = true;
    for (const auto& p : cfg_.params) {
      if (is_secret_name(p.name) || f_.has_annotation(p.line, "secret"))
        entry.taint[p.name] = Taint{p.name, p.line};
      if (is_scratch_name(p.name)) entry.scratch_bufs.insert(p.name);
    }
    in_[cfg_.entry] = std::move(entry);

    std::deque<int> work = {cfg_.entry};
    std::set<int> queued = {cfg_.entry};
    while (!work.empty()) {
      const int b = work.front();
      work.pop_front();
      queued.erase(b);
      AbsState s = in_[b];
      for (const auto& st : cfg_.blocks[b].stmts) transfer(s, st, nullptr);
      for (int succ : cfg_.blocks[b].succs) {
        if (in_[succ].join_from(s) && queued.insert(succ).second) work.push_back(succ);
      }
    }
  }

  /// True if any reachable `return` statement returns tainted data.
  bool returns_secret() {
    const auto reach = reachable_blocks(cfg_);
    for (std::size_t b = 0; b < cfg_.blocks.size(); ++b) {
      if (!reach[b] || !in_[b].reachable) continue;
      AbsState s = in_[b];
      for (const auto& st : cfg_.blocks[b].stmts) {
        if (st.kind == Stmt::Kind::kReturn) {
          Taint t;
          if (span_tainted(st.begin + 1, ret_expr_end(st), s, &t)) return true;
        }
        transfer(s, st, nullptr);
      }
    }
    return false;
  }

  /// 0-based parameter indices this function wipes (simple token scan —
  /// a may-wipe is treated as a wipe; the goal is wrapper transparency,
  /// not soundness against adversarial wrappers).
  std::vector<int> wiped_params() const {
    std::vector<int> out;
    for (std::size_t p = 0; p < cfg_.params.size(); ++p) {
      const std::string& name = cfg_.params[p].name;
      for (std::size_t i = cfg_.body_begin; i + 1 < cfg_.body_end; ++i) {
        if (toks_[i].kind != TokenKind::kIdentifier) continue;
        const bool direct = is_wipe_name(toks_[i].text);
        const auto it = sums_.find(toks_[i].text);
        const bool via_summary = it != sums_.end() && !it->second.wiped_params.empty();
        if ((!direct && !via_summary) || !is_punct(toks_[i + 1], "(")) continue;
        const std::size_t close = close_paren(toks_, i + 1, cfg_.body_end);
        for (std::size_t j = i + 2; j < close; ++j) {
          if (toks_[j].kind == TokenKind::kIdentifier && toks_[j].text == name) {
            out.push_back(static_cast<int>(p));
            j = close;
            i = close;
          }
        }
        if (std::find(out.begin(), out.end(), static_cast<int>(p)) != out.end()) break;
      }
    }
    return out;
  }

  void report(std::vector<Finding>& out) {
    const auto reach = reachable_blocks(cfg_);
    for (std::size_t b = 0; b < cfg_.blocks.size(); ++b) {
      if (!reach[b] || !in_[b].reachable) continue;
      AbsState s = in_[b];
      const auto& blk = cfg_.blocks[static_cast<int>(b)];
      for (const auto& st : blk.stmts) transfer(s, st, &out);
      // Fall-off-the-end exits: a block that reaches the synthetic exit
      // without a return statement is still a normal exit path.
      const bool to_exit = std::find(blk.succs.begin(), blk.succs.end(), cfg_.exit_id) !=
                           blk.succs.end();
      const bool ends_in_return =
          !blk.stmts.empty() && blk.stmts.back().kind == Stmt::Kind::kReturn;
      if (to_exit && !ends_in_return) {
        const int line = blk.stmts.empty() ? cfg_.line : blk.stmts.back().line;
        emit_wipe_findings(s, line, "falls off the end of the function", &out);
      }
    }
  }

 private:
  // The end of a return statement's expression (before the `;`).
  std::size_t ret_expr_end(const Stmt& st) const {
    return st.end > st.begin && is_punct(toks_[st.end - 1], ";") ? st.end - 1 : st.end;
  }

  bool allowed(int line, const char* rule) const {
    return f_.has_annotation(line, std::string("allow-") + rule) ||
           f_.has_annotation(line, std::string("ok(") + rule + ")") ||
           f_.has_annotation(cfg_.line, std::string("ok(") + rule + ")");
  }

  /// Does the token span hold secret data under `s`? Sanitizer call spans
  /// are clean; `.size()`-style metadata never matters because metadata
  /// names are already vetoed by is_secret_name().
  bool span_tainted(std::size_t b, std::size_t e, const AbsState& s, Taint* info) const {
    std::size_t i = b;
    while (i < e) {
      const Token& t = toks_[i];
      if (t.kind == TokenKind::kIdentifier) {
        if (is_sanitizer_name(t.text) && i + 1 < e && is_punct(toks_[i + 1], "(")) {
          i = close_paren(toks_, i + 1, e) + 1;
          continue;
        }
        if (is_secret_name(t.text)) {
          if (info) *info = Taint{t.text, t.line};
          return true;
        }
        const auto it = s.taint.find(t.text);
        if (it != s.taint.end()) {
          if (info) *info = it->second;
          return true;
        }
        const auto sit = sums_.find(t.text);
        if (sit != sums_.end() && sit->second.returns_secret && i + 1 < e &&
            is_punct(toks_[i + 1], "(")) {
          if (info) *info = Taint{t.text + "()", t.line};
          return true;
        }
      }
      ++i;
    }
    return false;
  }

  /// The scratch source named in [b,e), if any: a `scratch`-segment
  /// identifier, a known take_raw_into() target, or an existing view
  /// variable (propagation).
  const std::string* scratch_source_in(std::size_t b, std::size_t e, const AbsState& s,
                                       int* via_view_line) const {
    for (std::size_t i = b; i < e; ++i) {
      if (toks_[i].kind != TokenKind::kIdentifier) continue;
      const auto vit = s.views.find(toks_[i].text);
      if (vit != s.views.end()) {
        if (via_view_line) *via_view_line = vit->second.line;
        return &vit->second.source;
      }
    }
    static thread_local std::string direct;
    for (std::size_t i = b; i < e; ++i) {
      if (toks_[i].kind != TokenKind::kIdentifier) continue;
      if (is_scratch_name(toks_[i].text) || s.scratch_bufs.count(toks_[i].text)) {
        direct = toks_[i].text;
        if (via_view_line) *via_view_line = 0;
        return &direct;
      }
    }
    return nullptr;
  }

  /// Is [b,e) a *view expression* over scratch: an existing view variable,
  /// or a ByteView/span constructed from a scratch source?
  const std::string* view_of_scratch(std::size_t b, std::size_t e, const AbsState& s) const {
    // An owning-buffer construction (`Bytes(v.begin(), v.end())`) copies the
    // bytes out: the result is not a view even if a view var feeds it.
    for (std::size_t i = b; i + 1 < e; ++i) {
      if (toks_[i].kind == TokenKind::kIdentifier && is_owning_buf_type(toks_[i].text) &&
          (is_punct(toks_[i + 1], "(") || is_punct(toks_[i + 1], "{")))
        return nullptr;
    }
    for (std::size_t i = b; i < e; ++i) {
      if (toks_[i].kind != TokenKind::kIdentifier) continue;
      const auto vit = s.views.find(toks_[i].text);
      if (vit != s.views.end()) return &vit->second.source;
    }
    bool view_ctor = false;
    for (std::size_t i = b; i < e; ++i) {
      if (toks_[i].kind == TokenKind::kIdentifier && is_view_type(toks_[i].text))
        view_ctor = true;
    }
    if (!view_ctor) return nullptr;
    return scratch_source_in(b, e, s, nullptr);
  }

  void emit(std::vector<Finding>* out, int line, const char* rule, std::string msg) {
    if (out == nullptr || allowed(line, rule)) return;
    out->push_back(Finding{f_.path, line, rule, std::move(msg), cfg_.qual_name});
  }

  void emit_wipe_findings(const AbsState& s, int line, const std::string& how,
                          std::vector<Finding>* out) {
    if (out == nullptr) return;
    for (const auto& [name, decl] : s.secrets) {
      if (allowed(line, kWipeAllPaths) || allowed(decl.line, kWipeAllPaths)) continue;
      emit(out, line, kWipeAllPaths,
           "secret local '" + name + "' (declared line " + std::to_string(decl.line) +
               ") " + how + " without secure_wipe() — wipe it on every path or move it "
               "out");
    }
  }

  /// Scan a sink's argument span: directly secret-named identifiers keep the
  /// legacy rule id; tainted neutrally-named values are `secret-escape`.
  void check_sink_args(std::size_t open, std::size_t close, const AbsState& s,
                       const char* legacy_rule, const char* sink_what,
                       std::vector<Finding>* out) {
    for (std::size_t j = open + 1; j < close; ++j) {
      const Token& a = toks_[j];
      if (a.kind != TokenKind::kIdentifier) continue;
      if (is_sanitizer_name(a.text) && j + 1 < close && is_punct(toks_[j + 1], "(")) {
        j = close_paren(toks_, j + 1, close);
        continue;
      }
      if (is_secret_name(a.text)) {
        if (!allowed(a.line, legacy_rule)) {
          emit(out, a.line, legacy_rule,
               "secret '" + a.text + "' passed to " + sink_what +
                   (legacy_rule == kTraceNoSecret
                        ? "; trace key_fingerprint(" + a.text + ") instead"
                        : "; only sealed records may cross the data-plane queue"));
        }
        continue;
      }
      const auto it = s.taint.find(a.text);
      if (it != s.taint.end()) {
        emit(out, a.line, kSecretEscape,
             "'" + a.text + "' carries secret '" + it->second.origin + "' (tainted at line " +
                 std::to_string(it->second.line) + ") into " + sink_what +
                 " — the name-based rules cannot see this flow");
      }
    }
  }

  /// Identifiers of the member-call receiver chain ending just before the
  /// `.`/`->` at `dot` (walks `a.b->c`, `a[i].b`, `(*a).b` loosely).
  std::vector<std::string> receiver_chain(std::size_t dot) const {
    std::vector<std::string> out;
    std::size_t i = dot;
    while (i > 0) {
      const Token& t = toks_[i - 1];
      if (t.kind == TokenKind::kIdentifier) {
        out.push_back(t.text);
      } else if (!is_punct(t, ".") && !is_punct(t, "->") && !is_punct(t, "::") &&
                 !is_punct(t, "]") && !is_punct(t, "[") && !is_punct(t, ")")) {
        break;
      }
      --i;
      if (out.size() > 6) break;
    }
    return out;
  }

  // The transfer function: interpret one statement, mutating `s`. With
  // `out` non-null, also emit findings (the report pass re-runs this with
  // converged entry states).
  void transfer(AbsState& s, const Stmt& st, std::vector<Finding>* out) {
    if (!s.reachable) return;
    const std::size_t b = st.begin, e = st.end;

    // --- sinks & stale-view uses, evaluated against the pre-state ---------
    scan_sinks(s, b, e, out);
    if (out != nullptr) scan_stale_uses(s, st, out);

    // --- declaration / assignment effects (pre-kill state for the RHS) ---
    DeclOrAssign da;
    if (st.kind == Stmt::Kind::kPlain) da = parse_decl_or_assign(b, e);
    if (st.kind == Stmt::Kind::kCond) da = parse_range_for(b, e);
    Taint rhs_taint;
    const bool rhs_tainted =
        da.valid && span_tainted(da.rhs_begin, da.rhs_end, s, &rhs_taint);
    const std::string* rhs_view_src =
        da.valid ? view_of_scratch(da.rhs_begin, da.rhs_end, s) : nullptr;

    // Member stores of scratch views escape the view past its batch.
    if (da.valid && da.lhs_member && rhs_view_src != nullptr) {
      emit(out, st.line, kDanglingSpan,
           "span into reusable scratch buffer '" + *rhs_view_src +
               "' stored into a member — it dangles after the next batch recycle");
    }

    // --- ownership transfers and wipes kill obligations -------------------
    apply_kills(s, b, e);

    // --- scratch recycle events mark derived views stale ------------------
    apply_recycles(s, b, e);

    // --- post-state updates for the declared/assigned variable ------------
    if (da.valid && !da.lhs_member && !da.name.empty()) {
      const bool ann_secret = f_.has_annotation(da.name_line, "secret");
      // View tracking: a view-typed/pointer declaration mentioning a
      // scratch source forms a view of it; otherwise only an explicit view
      // expression (existing view var, ByteView ctor of scratch) propagates.
      const bool view_decl = da.is_decl && (is_view_type(da.type_last) ||
                                            (da.type_ref_or_ptr && !is_owning_buf_type(
                                                                       da.type_last)));
      const std::string* vsrc =
          view_decl ? scratch_source_in(da.rhs_begin, da.rhs_end, s, nullptr)
                    : rhs_view_src;
      if (vsrc != nullptr) {
        s.views[da.name] = ViewInfo{*vsrc, st.line, false};
      } else if (!da.compound) {
        s.views.erase(da.name);  // strong update: overwritten with non-view
      }
      // Taint tracking.
      if (rhs_tainted || ann_secret || is_secret_name(da.name)) {
        s.taint[da.name] = rhs_tainted ? rhs_taint : Taint{da.name, da.name_line};
      } else if (!da.compound) {
        s.taint.erase(da.name);
      }
      // Wipe obligations: secret-named (or annotated) owning buffer locals,
      // plus SIMD vector locals in intrinsic-including files (key schedules
      // staged in registers still hit the stack when spilled).
      const bool owning_type =
          is_owning_buf_type(da.type_last) ||
          (f_.has_intrinsic_include() && is_simd_vector_type(da.type_last));
      if (da.is_decl && !da.type_ref_or_ptr && owning_type &&
          (is_secret_name(da.name) || ann_secret) &&
          !f_.has_annotation(da.name_line, "not-secret") &&
          !allowed(da.name_line, kWipeAllPaths)) {
        s.secrets[da.name] = SecretLocal{da.name_line};
      }
    }

    // --- returns: ownership transfer out, then leak check -----------------
    if (st.kind == Stmt::Kind::kReturn) {
      const std::size_t rb = b + 1, re = ret_expr_end(st);
      // Only a *bare* `return k;` transfers ownership to the caller (the
      // call summary takes over there). `return std::move(k)` was already
      // handled by apply_kills; `return concat(k, x)` copies, so k stays
      // obliged.
      if (re == rb + 1 && toks_[rb].kind == TokenKind::kIdentifier) {
        s.secrets.erase(toks_[rb].text);
      }
      if (out != nullptr) {
        // Returning a view into scratch hands the caller a span that dies
        // with the next batch.
        const std::string* v = view_of_scratch(rb, re, s);
        if (v != nullptr) {
          emit(out, st.line, kDanglingSpan,
               "returning a span into reusable scratch buffer '" + *v +
                   "' — it dangles after the next batch recycle");
        }
        emit_wipe_findings(s, st.line, "leaks on this return path", out);
      }
    }
  }

  void scan_sinks(const AbsState& s, std::size_t b, std::size_t e,
                  std::vector<Finding>* out) {
    for (std::size_t i = b + 1; i < e; ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokenKind::kIdentifier || i + 1 >= e) continue;
      if (!is_punct(toks_[i - 1], ".") && !is_punct(toks_[i - 1], "->")) continue;
      if (!is_punct(toks_[i + 1], "(")) continue;
      const std::size_t close = close_paren(toks_, i + 1, e);

      if (emitter_methods().count(t.text) && !allowed(t.line, kTraceNoSecret)) {
        check_sink_args(i + 1, close, s, kTraceNoSecret, "a trace emitter", out);
      } else if (queue_methods().count(t.text) && !allowed(t.line, kQueueNoSecret)) {
        check_sink_args(i + 1, close, s, kQueueNoSecret, "a worker queue", out);
      } else if (container_methods().count(t.text)) {
        // Long-lived containers are secret sinks...
        bool longlived = false;
        for (const auto& r : receiver_chain(i - 1))
          for (const auto& seg : longlived_segments())
            if (has_segment(r, seg)) longlived = true;
        if (longlived && !allowed(t.line, kSecretEscape)) {
          check_sink_args(i + 1, close, s, kSecretEscape, "a long-lived container", out);
        }
        // ...and *any* container store of a scratch view outlives the batch.
        const std::string* v = view_of_scratch(i + 2, close, s);
        if (v != nullptr) {
          emit(out, t.line, kDanglingSpan,
               "span into reusable scratch buffer '" + *v +
                   "' stored into a container — it dangles after the next batch recycle");
        }
      }
    }
  }

  /// Flag uses of views whose scratch source has been recycled.
  void scan_stale_uses(const AbsState& s, const Stmt& st, std::vector<Finding>* out) {
    // The assignment target is being overwritten, not used.
    const DeclOrAssign da = st.kind == Stmt::Kind::kPlain
                                ? parse_decl_or_assign(st.begin, st.end)
                                : DeclOrAssign{};
    for (std::size_t i = st.begin; i < st.end; ++i) {
      if (toks_[i].kind != TokenKind::kIdentifier) continue;
      if (da.valid && !da.lhs_member && toks_[i].text == da.name &&
          (i < da.rhs_begin || i >= da.rhs_end))
        continue;
      const auto it = s.views.find(toks_[i].text);
      if (it != s.views.end() && it->second.stale) {
        emit(out, toks_[i].line, kDanglingSpan,
             "'" + toks_[i].text + "' is a span into scratch buffer '" +
                 it->second.source + "' (formed line " + std::to_string(it->second.line) +
                 ") used after the scratch was recycled — copy the bytes out instead");
      }
    }
  }

  /// secure_wipe()/wrapper calls, std::move, and swap end wipe obligations
  /// (and wipes end taint — the buffer is zeros afterwards).
  void apply_kills(AbsState& s, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i + 1 < e; ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokenKind::kIdentifier || !is_punct(toks_[i + 1], "(")) continue;
      const std::size_t close = close_paren(toks_, i + 1, e);

      if (is_wipe_name(t.text)) {
        for (std::size_t j = i + 2; j < close; ++j) {
          if (toks_[j].kind == TokenKind::kIdentifier) {
            s.taint.erase(toks_[j].text);
            s.secrets.erase(toks_[j].text);
          }
        }
        continue;
      }
      if (t.text == "move" || t.text == "swap") {
        // std::move(k): k is moved-from; swap(k, o): ownership churns.
        for (std::size_t j = i + 2; j < close; ++j) {
          if (toks_[j].kind == TokenKind::kIdentifier) {
            s.secrets.erase(toks_[j].text);
            if (t.text == "move") s.taint.erase(toks_[j].text);
          }
        }
        continue;
      }
      const auto it = sums_.find(t.text);
      if (it != sums_.end() && !it->second.wiped_params.empty()) {
        // Wrapper that wipes specific parameters: kill the matching args.
        std::vector<std::pair<std::size_t, std::size_t>> args;
        std::size_t arg_b = i + 2;
        int depth = 0;
        for (std::size_t j = i + 2; j <= close && j < e; ++j) {
          if (is_punct(toks_[j], "(") || is_punct(toks_[j], "[") || is_punct(toks_[j], "{"))
            ++depth;
          if (is_punct(toks_[j], ")") || is_punct(toks_[j], "]") || is_punct(toks_[j], "}"))
            --depth;
          if ((is_punct(toks_[j], ",") && depth == 0) || j == close) {
            args.emplace_back(arg_b, j);
            arg_b = j + 1;
          }
        }
        for (int idx : it->second.wiped_params) {
          if (idx < 0 || static_cast<std::size_t>(idx) >= args.size()) continue;
          const auto [ab, ae] = args[static_cast<std::size_t>(idx)];
          if (ae == ab + 1 && toks_[ab].kind == TokenKind::kIdentifier) {
            s.taint.erase(toks_[ab].text);
            s.secrets.erase(toks_[ab].text);
          }
        }
      }
    }
  }

  /// take_raw_into(buf) / buf.clear() / buf.resize() recycle a scratch
  /// buffer: views into it become stale.
  void apply_recycles(AbsState& s, std::size_t b, std::size_t e) {
    auto mark_stale = [&](const std::string& source) {
      for (auto& [name, v] : s.views)
        if (v.source == source) v.stale = true;
    };
    for (std::size_t i = b; i + 1 < e; ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "take_raw_into" && is_punct(toks_[i + 1], "(")) {
        const std::size_t close = close_paren(toks_, i + 1, e);
        for (std::size_t j = i + 2; j < close; ++j) {
          if (toks_[j].kind == TokenKind::kIdentifier) {
            s.scratch_bufs.insert(toks_[j].text);
            mark_stale(toks_[j].text);
            break;
          }
        }
        continue;
      }
      if ((is_scratch_name(t.text) || s.scratch_bufs.count(t.text)) &&
          (is_punct(toks_[i + 1], ".") || is_punct(toks_[i + 1], "->")) && i + 2 < e &&
          toks_[i + 2].kind == TokenKind::kIdentifier &&
          (toks_[i + 2].text == "clear" || toks_[i + 2].text == "resize" ||
           toks_[i + 2].text == "assign")) {
        mark_stale(t.text);
      }
    }
  }

  /// Parse `Type name = rhs;` / `Type name(rhs);` / `name = rhs;` /
  /// `x.y_ = rhs;` from a plain statement's token span.
  DeclOrAssign parse_decl_or_assign(std::size_t b, std::size_t e) const {
    DeclOrAssign out;
    if (b >= e) return out;
    // Trim the trailing `;`.
    std::size_t stmt_e = e;
    if (is_punct(toks_[stmt_e - 1], ";")) --stmt_e;
    if (b >= stmt_e) return out;

    // Find a top-level assignment operator.
    std::size_t eq = stmt_e;
    bool compound = false;
    int depth = 0;
    for (std::size_t i = b; i < stmt_e; ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokenKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      if (depth != 0) continue;
      if (t.text == "=") {
        eq = i;
        break;
      }
      if (t.text.size() == 2 && t.text[1] == '=' && t.text != "==" && t.text != "!=" &&
          t.text != "<=" && t.text != ">=") {
        eq = i;
        compound = true;
        break;
      }
    }

    // For `=`-less statements the LHS of interest ends at the first
    // top-level `(`/`{` (a constructor initializer); for assignments it
    // ends at the operator.
    std::size_t lhs_e = eq;
    if (eq == stmt_e) {
      lhs_e = b;
      int d0 = 0;
      while (lhs_e < stmt_e) {
        if (is_punct(toks_[lhs_e], "(") || is_punct(toks_[lhs_e], "{")) {
          if (d0 == 0) break;
        }
        if (is_punct(toks_[lhs_e], "<")) ++d0;
        if (is_punct(toks_[lhs_e], ">")) d0 = std::max(0, d0 - 1);
        ++lhs_e;
      }
    }
    // Member / element target?
    bool member = false;
    for (std::size_t i = b; i < lhs_e; ++i) {
      if (is_punct(toks_[i], ".") || is_punct(toks_[i], "->") || is_punct(toks_[i], "["))
        member = true;
    }

    // Collect top-level identifier groups on the LHS.
    struct Group {
      std::string last_ident;
      int line = 0;
    };
    std::vector<Group> groups;
    bool ref_or_ptr = false;
    {
      int d = 0;
      bool in_group = false;
      bool joiner = false;  // saw `::` since the group's last identifier
      for (std::size_t i = b; i < lhs_e; ++i) {
        const Token& t = toks_[i];
        if (t.kind == TokenKind::kPunct) {
          if (t.text == "<" && i > b && toks_[i - 1].kind == TokenKind::kIdentifier) ++d;
          if (t.text == ">") d = std::max(0, d - 1);
          if (d > 0) continue;
          if (t.text == "*" || t.text == "&" || t.text == "&&") ref_or_ptr = true;
          if (t.text == "::") {
            joiner = true;
          } else {
            in_group = false;
            joiner = false;
          }
          continue;
        }
        if (d > 0) continue;
        if (t.kind != TokenKind::kIdentifier) {
          in_group = false;
          joiner = false;
          continue;
        }
        if (decl_keywords().count(t.text)) continue;
        // Adjacent identifiers (`Bytes okm`) are separate groups; only a
        // `::` joins identifiers into one qualified name.
        if (in_group && joiner) {
          groups.back().last_ident = t.text;
          groups.back().line = t.line;
        } else {
          groups.push_back(Group{t.text, t.line});
          in_group = true;
        }
        joiner = false;
      }
    }

    if (eq < stmt_e) {
      out.valid = true;
      out.compound = compound;
      out.rhs_begin = eq + 1;
      out.rhs_end = stmt_e;
      if (member) {
        // Only genuine member stores count (not `arr[i] =` onto a local —
        // but both are treated as opaque, which is safe for may-taint).
        out.lhs_member = true;
        return out;
      }
      if (groups.size() >= 2) {
        out.is_decl = true;
        out.type_last = groups[groups.size() - 2].last_ident;
        out.type_ref_or_ptr = ref_or_ptr;
      } else if (groups.size() != 1) {
        out.valid = false;
        return out;
      }
      out.name = groups.back().last_ident;
      out.name_line = groups.back().line;
      // Repo convention: a trailing '_' names a member, so `held_view_ = v;`
      // is a member store even without an explicit `this->`.
      if (!out.is_decl && !out.name.empty() && out.name.back() == '_') {
        out.lhs_member = true;
      }
      return out;
    }

    // No `=`: a constructor-initialized declaration `Type name(args);` /
    // `Type name{args};` / `Type name;` needs at least two ident groups
    // before the initializer.
    if (member || groups.size() < 2) return out;
    const std::size_t open = lhs_e;
    // The name must be the identifier just before the initializer (or the
    // statement end for `Type name;`).
    const std::size_t name_tok = open - 1;
    if (toks_[name_tok].kind != TokenKind::kIdentifier ||
        groups.back().last_ident != toks_[name_tok].text)
      return out;
    out.valid = true;
    out.is_decl = true;
    out.name = groups.back().last_ident;
    out.name_line = groups.back().line;
    out.type_last = groups[groups.size() - 2].last_ident;
    out.type_ref_or_ptr = ref_or_ptr;
    if (open < stmt_e) {
      out.rhs_begin = open + 1;
      const std::size_t close = is_punct(toks_[open], "(")
                                    ? close_paren(toks_, open, stmt_e)
                                    : stmt_e - 1;
      out.rhs_end = std::min(close, stmt_e);
    }
    return out;
  }

  /// `for (Type name : range)` binds `name` to elements of `range`.
  DeclOrAssign parse_range_for(std::size_t b, std::size_t e) const {
    DeclOrAssign out;
    if (b >= e || toks_[b].text != "for") return out;
    std::size_t colon = e;
    int depth = 0;
    for (std::size_t i = b; i < e; ++i) {
      if (is_punct(toks_[i], "(") || is_punct(toks_[i], "[") || is_punct(toks_[i], "{"))
        ++depth;
      if (is_punct(toks_[i], ")") || is_punct(toks_[i], "]") || is_punct(toks_[i], "}"))
        --depth;
      if (is_punct(toks_[i], ":") && depth == 1) {
        colon = i;
        break;
      }
    }
    if (colon >= e || colon == b || toks_[colon - 1].kind != TokenKind::kIdentifier)
      return out;
    out.valid = true;
    out.is_decl = true;
    out.name = toks_[colon - 1].text;
    out.name_line = toks_[colon - 1].line;
    out.type_ref_or_ptr = true;  // element bindings are views, never owners
    out.rhs_begin = colon + 1;
    out.rhs_end = e > b && is_punct(toks_[e - 1], ")") ? e - 1 : e;
    return out;
  }

  const LexedFile& f_;
  const std::vector<Token>& toks_;
  const Cfg& cfg_;
  const Summaries& sums_;
  std::vector<AbsState> in_;
};

}  // namespace

std::vector<AnalyzedFile> analyze_files(const std::vector<LexedFile>& files) {
  std::vector<AnalyzedFile> out;
  out.reserve(files.size());
  for (const auto& f : files) {
    AnalyzedFile af;
    af.file = &f;
    af.cfgs = build_cfgs(f);
    out.push_back(std::move(af));
  }
  return out;
}

Summaries compute_summaries(const std::vector<AnalyzedFile>& files) {
  Summaries sums;
  // Fixed point over all TUs: each pass folds the previous pass's summaries
  // into every function's analysis, so secrets propagate across one more
  // call boundary per pass. Two passes reach the common cases (helper
  // returns a member secret; wrapper wipes a param); the loop runs until
  // stable with a small bound for pathological call chains.
  for (int pass = 0; pass < 4; ++pass) {
    Summaries next = sums;
    for (const auto& af : files) {
      for (const auto& cfg : af.cfgs) {
        FnTaint ft(*af.file, cfg, sums);
        ft.solve();
        FnSummary& fs = next[cfg.name];
        if (ft.returns_secret()) fs.returns_secret = true;
        for (int p : ft.wiped_params()) {
          if (std::find(fs.wiped_params.begin(), fs.wiped_params.end(), p) ==
              fs.wiped_params.end())
            fs.wiped_params.push_back(p);
        }
      }
    }
    const bool stable = next == sums;
    sums = std::move(next);
    if (stable) break;
  }
  return sums;
}

void run_dataflow_rules(const AnalyzedFile& af, const Summaries& summaries,
                        std::vector<Finding>& out) {
  for (const auto& cfg : af.cfgs) {
    FnTaint ft(*af.file, cfg, summaries);
    ft.solve();
    ft.report(out);
  }
}

}  // namespace mbtls::lint
