// Minimal C++ lexer for mbtls-lint.
//
// Produces a flat token stream (identifiers, numbers, literals, punctuation)
// with line numbers, plus the set of `// lint: <directive>` annotations per
// line. This is deliberately NOT a full C++ front end: the lint rules are
// written against token shapes that are unambiguous in this codebase
// (declarations like `Reader r(...)`, calls like `memcmp(...)`), which a
// token stream resolves reliably without a parse tree.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mbtls::lint {

enum class TokenKind {
  kIdentifier,   // names and keywords (the rules tell them apart)
  kNumber,       // integer / float literals, any base
  kString,       // "..." including raw strings; content not preserved
  kChar,         // '...'
  kPunct,        // operators and punctuation, longest-match (e.g. "==", "->")
};

struct Token {
  TokenKind kind;
  std::string text;  // identifier/punct spelling; literals collapse to "" text
  int line = 0;
};

/// One source file, lexed. `annotations` maps line -> the set of directives
/// from `// lint: a, b` comments on that line (comma separated, trimmed).
struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::map<int, std::set<std::string>> annotations;

  bool has_annotation(int line, const std::string& directive) const {
    auto it = annotations.find(line);
    return it != annotations.end() && it->second.count(directive) > 0;
  }
};

/// Lex `source`. Comments and preprocessor line contents are skipped, except
/// that `// lint:` comment annotations are recorded.
LexedFile lex(std::string path, const std::string& source);

}  // namespace mbtls::lint
