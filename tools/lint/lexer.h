// Minimal C++ lexer for mbtls-lint.
//
// Produces a flat token stream (identifiers, numbers, literals, punctuation)
// with line numbers, plus the set of `// lint: <directive>` annotations per
// line. This is deliberately NOT a full C++ front end: the lint rules are
// written against token shapes that are unambiguous in this codebase
// (declarations like `Reader r(...)`, calls like `memcmp(...)`), which a
// token stream resolves reliably without a parse tree.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mbtls::lint {

enum class TokenKind {
  kIdentifier,   // names and keywords (the rules tell them apart)
  kNumber,       // integer / float literals, any base
  kString,       // "..." including raw strings; content not preserved
  kChar,         // '...'
  kPunct,        // operators and punctuation, longest-match (e.g. "==", "->")
};

struct Token {
  TokenKind kind;
  std::string text;  // identifier/punct spelling; literals collapse to "" text
  int line = 0;
};

/// One source file, lexed. `annotations` maps line -> the set of directives
/// from `// lint: a, b` comments on that line (comma separated, trimmed).
/// `includes` holds every `#include` target (the text between <> or "",
/// without the delimiters) — the only preprocessor content the rules need.
struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::map<int, std::set<std::string>> annotations;
  std::set<std::string> includes;

  bool has_annotation(int line, const std::string& directive) const {
    auto it = annotations.find(line);
    return it != annotations.end() && it->second.count(directive) > 0;
  }

  /// True when the file includes an x86 SIMD intrinsic header. Files like
  /// crypto/backend_aesni.cpp hold key material in `__m128i` registers and
  /// locals; the wipe rules treat those vector types as owning buffers, but
  /// only in files where the type can actually be Intel's (not a typedef).
  bool has_intrinsic_include() const {
    static const char* kIntrinsicHeaders[] = {
        "immintrin.h", "wmmintrin.h", "emmintrin.h", "smmintrin.h", "tmmintrin.h",
        "xmmintrin.h", "pmmintrin.h", "nmmintrin.h", "x86intrin.h",
    };
    for (const char* h : kIntrinsicHeaders) {
      if (includes.count(h) > 0) return true;
    }
    return false;
  }
};

/// Lex `source`. Comments and preprocessor line contents are skipped, except
/// that `// lint:` comment annotations are recorded.
LexedFile lex(std::string path, const std::string& source);

}  // namespace mbtls::lint
