#include "rules.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "dataflow.h"

namespace mbtls::lint {

namespace {

// ------------------------------------------------------------ path classes

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Directories whose buffers may hold secrets: comparisons there must be
/// constant time (issue rule 1).
bool in_secret_dir(const std::string& path) {
  return contains(path, "src/crypto/") || contains(path, "src/rsa/") ||
         contains(path, "src/ec/") || contains(path, "src/bignum/") ||
         contains(path, "src/mbtls/");
}

/// The wipe rule's name-pattern component also covers src/tls (session and
/// handshake keys live there).
bool in_keyed_dir(const std::string& path) {
  return in_secret_dir(path) || contains(path, "src/tls/");
}

/// Directories that parse attacker-controlled bytes: no raw new[].
bool in_parser_dir(const std::string& path) {
  return contains(path, "src/asn1/") || contains(path, "src/x509/") ||
         contains(path, "src/http/") || contains(path, "src/tls/") ||
         contains(path, "src/util/") || contains(path, "src/mbtls/");
}

bool in_src(const std::string& path) { return contains(path, "src/"); }

bool in_tests(const std::string& path) { return contains(path, "tests/"); }

// --------------------------------------------------------------- utilities

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Split an identifier into lowercase '_'-separated segments with trailing
/// digits stripped ("client_key2" -> {client, key}).
std::vector<std::string> segments(const std::string& id) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : lower(id)) {
    if (c == '_') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  for (auto& s : out) {
    while (!s.empty() && std::isdigit(static_cast<unsigned char>(s.back()))) s.pop_back();
  }
  return out;
}

const std::set<std::string>& secret_segments() {
  static const std::set<std::string> kSet = {
      "key",  "keys", "secret", "secrets", "ikm", "prk",
      "okm",  "mac",  "tag",    "premaster", "psk",
  };
  return kSet;
}

/// Segments that mark an identifier as metadata *about* a secret (a length,
/// an index) rather than the secret itself.
const std::set<std::string>& public_segments() {
  static const std::set<std::string> kSet = {
      "len", "lens", "length", "size", "count", "idx", "index", "offset", "type", "id",
  };
  return kSet;
}

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokenKind::kPunct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == TokenKind::kIdentifier && t.text == s;
}

/// Index of the matching close paren for the open paren at `open`, or
/// tokens.size() if unbalanced.
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    if (is_punct(toks[i], ")") && --depth == 0) return i;
  }
  return toks.size();
}

bool allowed(const LexedFile& f, int line, const std::string& rule) {
  return rule_allowed(f, line, rule);
}

// ------------------------------------------------------- rule: secret-compare

const char* kSecretCompare = "secret-compare";

void rule_secret_compare(const LexedFile& f, std::vector<Finding>& out) {
  if (!in_secret_dir(f.path)) return;
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (allowed(f, t.line, kSecretCompare)) continue;

    // memcmp/bcmp are never acceptable on this code's buffers.
    if ((t.text == "memcmp" || t.text == "bcmp") && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(")) {
      out.push_back({f.path, t.line, kSecretCompare,
                     t.text + "() in secret-bearing code; use constant_time_equal()"});
      continue;
    }

    // equal(...) / std::equal(...) with a secret-named argument. The
    // ct::equal from util/ct.h is the sanctioned constant-time comparison,
    // so the qualified spelling is exempt.
    if (t.text == "equal" && i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
      if (i >= 2 && is_punct(toks[i - 1], "::") && is_ident(toks[i - 2], "ct")) continue;
      const std::size_t close = match_paren(toks, i + 1);
      for (std::size_t j = i + 2; j < close; ++j) {
        if (toks[j].kind == TokenKind::kIdentifier && is_secret_name(toks[j].text)) {
          out.push_back({f.path, t.line, kSecretCompare,
                         "variable-time equal() on secret '" + toks[j].text +
                             "'; use constant_time_equal()"});
          break;
        }
      }
      continue;
    }
  }

  // secret == x / x != secret: walk the qualified-name chain touching the
  // operator on either side and flag if any component names a secret.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_punct(toks[i], "==") && !is_punct(toks[i], "!=")) continue;
    if (allowed(f, toks[i].line, kSecretCompare)) continue;
    auto chain_has_secret = [&](std::size_t start, int step) {
      std::size_t j = start;
      // A qualified-name chain is identifiers joined by '.', '->', '::'.
      while (j < toks.size()) {
        const Token& t = toks[j];
        if (t.kind == TokenKind::kIdentifier) {
          if (is_secret_name(t.text)) return true;
        } else if (!is_punct(t, ".") && !is_punct(t, "->") && !is_punct(t, "::")) {
          break;
        }
        if (step < 0 && j == 0) break;
        j = static_cast<std::size_t>(static_cast<long>(j) + step);
      }
      return false;
    };
    if ((i > 0 && chain_has_secret(i - 1, -1)) ||
        (i + 1 < toks.size() && chain_has_secret(i + 1, +1))) {
      out.push_back({f.path, toks[i].line, kSecretCompare,
                     "variable-time '" + toks[i].text +
                         "' on a secret-named buffer; use constant_time_equal()"});
    }
  }
}

// ---------------------------------------------------------- rule: secret-wipe

const char* kSecretWipe = "secret-wipe";

/// A declared secret that must be wiped somewhere in its header/impl group.
struct SecretDecl {
  std::string file;
  int line;
  std::string name;
};

std::string stem_of(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

/// Collect candidate declared names on `line`: identifiers immediately
/// followed by ';' ',' '=' '{' or '[' at template-angle depth 0.
std::vector<std::string> declared_names_on_line(const LexedFile& f, int line) {
  std::vector<std::string> out;
  int angle = 0;
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].line != line) continue;
    if (is_punct(toks[i], "<") && i > 0 && toks[i - 1].kind == TokenKind::kIdentifier) ++angle;
    if (is_punct(toks[i], ">") && angle > 0) --angle;
    if (angle > 0 || toks[i].kind != TokenKind::kIdentifier) continue;
    if (i + 1 < toks.size() &&
        (is_punct(toks[i + 1], ";") || is_punct(toks[i + 1], ",") ||
         is_punct(toks[i + 1], "=") || is_punct(toks[i + 1], "{") ||
         is_punct(toks[i + 1], "["))) {
      out.push_back(toks[i].text);
    }
  }
  return out;
}

void rule_secret_wipe(const std::vector<LexedFile>& files, std::vector<Finding>& out) {
  // Pass 1: gather annotated + name-pattern declarations, and all names that
  // appear inside secure_wipe()/secure_wipe_object() argument lists, grouped
  // by file stem so a header member wiped in its .cpp destructor counts.
  std::map<std::string, std::set<std::string>> wiped_by_stem;
  std::vector<SecretDecl> decls;

  for (const auto& f : files) {
    const std::string stem = stem_of(f.path);
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      if ((toks[i].text == "secure_wipe" || toks[i].text == "secure_wipe_object") &&
          i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
        const std::size_t close = match_paren(toks, i + 1);
        for (std::size_t j = i + 2; j < close; ++j) {
          if (toks[j].kind == TokenKind::kIdentifier) wiped_by_stem[stem].insert(toks[j].text);
        }
      }
    }

    // (a) explicit `// lint: secret` annotations.
    for (const auto& [line, directives] : f.annotations) {
      if (!directives.count("secret")) continue;
      for (const auto& name : declared_names_on_line(f, line))
        decls.push_back({f.path, line, name});
    }

    // (b) name-pattern: persistent `Bytes <secret-name>_` members in keyed
    // dirs (the trailing underscore is the codebase's member convention;
    // members outlive calls and must be wiped on teardown).
    if (!in_keyed_dir(f.path)) continue;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!is_ident(toks[i], "Bytes")) continue;
      // Walk a comma-separated declarator list: Bytes a_, b_;
      std::size_t j = i + 1;
      while (j + 1 < toks.size() && toks[j].kind == TokenKind::kIdentifier &&
             (is_punct(toks[j + 1], ";") || is_punct(toks[j + 1], ",") ||
              is_punct(toks[j + 1], "{"))) {
        const std::string& name = toks[j].text;
        if (name.size() > 1 && name.back() == '_' && is_secret_name(name) &&
            !f.has_annotation(toks[j].line, "not-secret") &&
            !allowed(f, toks[j].line, kSecretWipe)) {
          decls.push_back({f.path, toks[j].line, name});
        }
        if (is_punct(toks[j + 1], ";")) break;
        j += (is_punct(toks[j + 1], "{")) ? 3 : 2;  // skip `{}` initializer
      }
    }
  }

  for (const auto& d : decls) {
    const auto it = wiped_by_stem.find(stem_of(d.file));
    if (it != wiped_by_stem.end() && it->second.count(d.name)) continue;
    out.push_back({d.file, d.line, kSecretWipe,
                   "secret '" + d.name + "' is never passed to secure_wipe()"});
  }
}

// ------------------------------------------------------------ rule: banned-fn

const char* kBannedFn = "banned-fn";

void rule_banned_fn(const LexedFile& f, std::vector<Finding>& out) {
  if (!in_src(f.path) && !in_tests(f.path)) return;
  static const std::set<std::string> kBanned = {
      "strcpy", "strcat", "sprintf", "vsprintf", "gets", "strtok", "alloca", "rand", "srand",
  };
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (allowed(f, t.line, kBannedFn)) continue;
    const bool member_access =
        i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
    if (kBanned.count(t.text) && !member_access && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(")) {
      out.push_back({f.path, t.line, kBannedFn,
                     "banned function " + t.text + "() (unbounded/nondeterministic)"});
      continue;
    }
    // Raw new[] in parser code: parsers handle attacker-sized lengths and
    // must use Bytes / vector instead of manual array lifetime.
    if (t.text == "new" && in_parser_dir(f.path)) {
      for (std::size_t j = i + 1; j < std::min(toks.size(), i + 8); ++j) {
        if (is_punct(toks[j], "(") || is_punct(toks[j], ";") || is_punct(toks[j], "{") ||
            is_punct(toks[j], ")"))
          break;
        if (is_punct(toks[j], "[")) {
          out.push_back({f.path, t.line, kBannedFn,
                         "raw new[] in parser code; use Bytes or std::vector"});
          break;
        }
      }
    }
  }
}

// --------------------------------------------------------- rule: partial-read

const char* kPartialRead = "partial-read";

void rule_partial_read(const LexedFile& f, std::vector<Finding>& out) {
  if (!in_src(f.path)) return;
  const auto& toks = f.tokens;
  // Track brace depth to bound each variable's scope.
  std::vector<int> depth_at(toks.size(), 0);
  int depth = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (is_punct(toks[i], "{")) ++depth;
    if (is_punct(toks[i], "}")) --depth;
    depth_at[i] = depth;
  }

  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_ident(toks[i], "Reader") && !is_ident(toks[i], "Parser")) continue;
    if (toks[i + 1].kind != TokenKind::kIdentifier) continue;
    const Token& var = toks[i + 1];
    const Token& after = toks[i + 2];
    if (!is_punct(after, "(") && !is_punct(after, "{") && !is_punct(after, "=")) continue;

    // Distinguish `Reader r(expr)` from a function declaration
    // `Parser context(unsigned n);`: empty parens or two adjacent
    // identifiers inside the parens mean "function", not "variable".
    if (is_punct(after, "(")) {
      const std::size_t close = match_paren(toks, i + 2);
      if (close == i + 3) continue;  // `()` — declaration or vexing parse
      bool looks_like_fn = false;
      for (std::size_t j = i + 3; j + 1 < close; ++j) {
        if (toks[j].kind == TokenKind::kIdentifier &&
            toks[j + 1].kind == TokenKind::kIdentifier)
          looks_like_fn = true;
      }
      if (looks_like_fn) continue;
    }

    if (f.has_annotation(var.line, "partial-read") || allowed(f, var.line, kPartialRead))
      continue;

    // Scan the rest of the enclosing scope for `var.expect_end()`.
    const int decl_depth = depth_at[i];
    bool satisfied = false;
    for (std::size_t j = i + 3; j < toks.size() && depth_at[j] >= decl_depth; ++j) {
      if (toks[j].kind == TokenKind::kIdentifier && toks[j].text == var.text &&
          j + 2 < toks.size() && is_punct(toks[j + 1], ".") &&
          is_ident(toks[j + 2], "expect_end")) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      out.push_back({f.path, var.line, kPartialRead,
                     toks[i].text + " '" + var.text +
                         "' never calls expect_end(); trailing bytes would be silently "
                         "accepted (annotate `// lint: partial-read` if intentional)"});
    }
  }
}

// ---------------------------------------------------------- rule: nondet-test

const char* kNondetTest = "nondet-test";

void rule_nondet_test(const LexedFile& f, std::vector<Finding>& out) {
  if (!in_tests(f.path)) return;
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (f.has_annotation(t.line, "nondeterministic") || allowed(f, t.line, kNondetTest))
      continue;
    if (t.text == "srand" || t.text == "random_device" || t.text == "random_shuffle" ||
        t.text == "system_clock") {
      out.push_back({f.path, t.line, kNondetTest,
                     t.text + " makes the test nondeterministic; seed a Drbg with a fixed "
                              "label instead"});
      continue;
    }
    if (t.text == "rand" && i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
        (i == 0 || (!is_punct(toks[i - 1], ".") && !is_punct(toks[i - 1], "->")))) {
      out.push_back({f.path, t.line, kNondetTest,
                     "rand() makes the test nondeterministic; use a fixed-seed Drbg"});
      continue;
    }
    if (t.text == "time" && i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
        i + 2 < toks.size() &&
        (is_ident(toks[i + 2], "nullptr") || is_ident(toks[i + 2], "NULL") ||
         (toks[i + 2].kind == TokenKind::kNumber && toks[i + 2].text == "0"))) {
      out.push_back({f.path, t.line, kNondetTest,
                     "wall-clock seed time(...) makes the test nondeterministic"});
    }
  }
}

}  // namespace

bool is_secret_name(const std::string& identifier) {
  const auto segs = segments(identifier);
  bool secret = false;
  for (const auto& s : segs) {
    if (secret_segments().count(s)) secret = true;
    if (public_segments().count(s)) return false;
  }
  return secret;
}

bool rule_allowed(const LexedFile& f, int line, const std::string& rule) {
  return f.has_annotation(line, "allow-" + rule) ||
         f.has_annotation(line, "ok(" + rule + ")");
}

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> kRules = {
      {"secret-compare",
       "no memcmp/==/variable-time equal() on secret buffers in src/{crypto,rsa,ec,bignum,mbtls}"},
      {"secret-wipe",
       "declarations marked `// lint: secret` (and Bytes *key*_ members in keyed dirs) must "
       "reach secure_wipe()"},
      {"banned-fn", "no strcpy/sprintf/strcat/gets/strtok/alloca/rand/srand; no raw new[] in parsers"},
      {"partial-read",
       "every Reader/Parser decode path ends in expect_end() or `// lint: partial-read`"},
      {"nondet-test", "tests must be deterministic: no srand/rand/random_device/wall-clock seeds"},
      {"trace-no-secret",
       "trace emitters never receive key material (dataflow: direct secret names keep this id); "
       "wrap keys in key_fingerprint()"},
      {"queue-no-secret",
       "worker queues never receive key material (dataflow: direct secret names keep this id); "
       "only sealed records cross the data plane"},
      {"secret-escape",
       "taint from a secret source reaching a trace/queue/long-lived-container sink through any "
       "chain of assignments or call returns (interprocedural, via summaries)"},
      {"wipe-all-paths",
       "every normal CFG exit of a function holding a secret-named owning local must reach "
       "secure_wipe() or transfer ownership out (path-sensitive; catches early-return leaks)"},
      {"dangling-span",
       "views into reusable scratch buffers must not escape to members/containers/returns or "
       "be used after the scratch is recycled (take_raw_into/clear/resize)"},
  };
  return kRules;
}

namespace {

/// The dataflow rule families whose findings only apply to production code
/// under src/ (tests churn short-lived key material by design; the legacy
/// trace rule stays repo-wide, matching its token-rule ancestor).
bool dataflow_rule_src_only(const std::string& rule) {
  return rule == "queue-no-secret" || rule == "secret-escape" ||
         rule == "wipe-all-paths" || rule == "dangling-span";
}

}  // namespace

std::vector<Finding> run_rules(const std::vector<LexedFile>& files,
                               const std::vector<std::string>& only_rules) {
  std::vector<Finding> out;
  for (const auto& f : files) {
    rule_secret_compare(f, out);
    rule_banned_fn(f, out);
    rule_partial_read(f, out);
    rule_nondet_test(f, out);
  }
  rule_secret_wipe(files, out);

  // Layer 2: CFG + taint dataflow with interprocedural summaries.
  const std::vector<AnalyzedFile> analyzed = analyze_files(files);
  const Summaries summaries = compute_summaries(analyzed);
  std::vector<Finding> flow;
  for (const auto& af : analyzed) run_dataflow_rules(af, summaries, flow);
  for (auto& f : flow) {
    if (dataflow_rule_src_only(f.rule) && !in_src(f.file)) continue;
    out.push_back(std::move(f));
  }

  if (!only_rules.empty()) {
    const std::set<std::string> keep(only_rules.begin(), only_rules.end());
    out.erase(std::remove_if(out.begin(), out.end(),
                             [&](const Finding& f) { return !keep.count(f.rule); }),
              out.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace mbtls::lint
