// Lint rules for the mbTLS codebase. See DESIGN.md "Tooling & invariants".
//
// Rules are written against the token stream from lexer.h plus per-line
// `// lint:` annotations. Which rules apply to a file is decided from its
// path (the repo layout is part of the contract: src/crypto is secret-
// bearing, src/asn1 is a parser, tests/ must be deterministic, ...).
#pragma once

#include <string>
#include <vector>

#include "lexer.h"

namespace mbtls::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string symbol;  // enclosing function for dataflow findings ("" for token rules)

  Finding() = default;
  Finding(std::string file_, int line_, std::string rule_, std::string message_,
          std::string symbol_ = "")
      : file(std::move(file_)),
        line(line_),
        rule(std::move(rule_)),
        message(std::move(message_)),
        symbol(std::move(symbol_)) {}

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
  bool operator==(const Finding& o) const {
    return file == o.file && line == o.line && rule == o.rule && message == o.message;
  }
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// The rule catalogue (for --list-rules and the fixture tests).
const std::vector<RuleInfo>& rule_catalogue();

/// Run every rule over the lexed files. Cross-file state (header/impl
/// pairing for the wipe rule) is resolved inside, which is why this takes
/// the whole batch rather than one file at a time. `only_rules`, when
/// non-empty, restricts the run to those rule ids.
std::vector<Finding> run_rules(const std::vector<LexedFile>& files,
                               const std::vector<std::string>& only_rules);

/// True if `identifier` names likely secret material (key/secret/ikm/...),
/// exposed for unit testing.
bool is_secret_name(const std::string& identifier);

/// True if line carries `// lint: allow-<rule>` or `// lint: ok(<rule>)` —
/// the two suppression spellings (ok() is the reviewed-burn-down form and
/// should carry a justification in the rest of the comment).
bool rule_allowed(const LexedFile& f, int line, const std::string& rule);

}  // namespace mbtls::lint
