// Lint fixture: key material must never cross the data-plane worker queue —
// both submissions here trip `queue-no-secret`. Expected file:line pairs are
// asserted in tests/test_lint_rules.cpp — keep line numbers stable.
#include <string>

namespace fixture {

struct WorkQueue {
  void post(unsigned long shard, const std::string& payload);
  void submit(const std::string& payload);
};

void ship_session(WorkQueue& q, const std::string& session_key,
                  const std::string& hop_secret) {
  q.post(0, session_key);  // line 15: raw key posted to a worker queue
  q.submit(hop_secret);    // line 16: raw secret submitted to a worker queue
}

}  // namespace fixture
