// Lint fixture: the clean twin of bad_queue.cpp. Sealed records, public
// metadata, and an annotated exemption — must produce no findings.
#include <string>

namespace fixture {

struct Hop {
  std::string seal(int type, const std::string& plaintext);
};

struct WorkQueue {
  void post(unsigned long shard, const std::string& payload);
  void submit(const std::string& payload);
};

void ship_session(WorkQueue& q, Hop& hop, const std::string& master_secret,
                  unsigned long key_len) {
  q.post(0, hop.seal(23, master_secret));  // sealed record: ciphertext may cross
  q.submit(std::to_string(key_len));       // public metadata about a key
  q.post(1, master_secret);  // lint: allow-queue-no-secret
}

}  // namespace fixture
