// Lint fixture: decode paths that never check for trailing bytes, plus
// banned functions — trips `partial-read` and `banned-fn`.
#include <cstdio>
#include <cstring>

namespace fixture {

struct View {};

class Reader {
 public:
  explicit Reader(View data);
  unsigned u8();
  void expect_end() const;
};

class Parser {
 public:
  explicit Parser(View data);
  void expect_end() const;
};

unsigned decode_one(View data) {
  Reader r(data);  // line 24: no expect_end on this Reader
  return r.u8();
}

void decode_two(View data) {
  Parser p(data);  // line 29: no expect_end on this Parser
}

void copy_name(char* dst, const char* src) {
  strcpy(dst, src);  // line 33: banned function
  char buf[16];
  sprintf(buf, "%s", src);  // line 35: banned function
  (void)buf;
}

unsigned char* make_buffer(unsigned long n) {
  return new unsigned char[n];  // line 40: raw new[] in parser code
}

int weak_random() {
  return rand();  // line 44: banned function
}

}  // namespace fixture
