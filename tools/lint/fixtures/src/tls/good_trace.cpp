// Lint fixture: the clean twin of bad_trace.cpp. Fingerprinted keys, public
// metadata, and an annotated exemption — must produce no findings.
#include <string>

namespace fixture {

std::string key_fingerprint(const std::string& material);

struct Emitter {
  void instant(const char* category, const char* name, const std::string& arg);
  void counter(const char* name, double delta);
};

void log_handshake(Emitter& em, const std::string& master_secret,
                   const std::string& hop_key, unsigned long key_len) {
  em.instant("tls", "keys.derived", key_fingerprint(master_secret));
  em.counter("key.len", static_cast<double>(key_len));
  em.instant("tls", "debug.keylog", hop_key);  // lint: allow-trace-no-secret
}

}  // namespace fixture
