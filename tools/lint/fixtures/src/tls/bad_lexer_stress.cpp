// Lint fixture: the lexer must survive raw strings, digit separators, and
// comment line continuations — and still flag real violations after them.
namespace fixture {

struct Emitter {
  void instant(const char* what, int v);
};

// Banned tokens inside a raw string are data, not code:
static const char* kDoc = R"doc(
  strcpy(dst, src);
  memcmp(secret_a, secret_b, n);
)doc";

static const int kBudget = 1'000'000;  // digit separators lex as one number

void leak(Emitter& trace, int session_key) {
  // the next physical line is comment text, not a second violation: \
     trace.instant("swallowed", session_key);
  trace.instant("key", session_key);  // line 20: trace-no-secret still fires
}

}  // namespace fixture
