// Lint fixture: key material must never flow into a trace emitter — both
// emissions here trip `trace-no-secret`. Expected file:line pairs are
// asserted in tests/test_lint_rules.cpp — keep line numbers stable.
#include <string>

namespace fixture {

struct Emitter {
  void instant(const char* category, const char* name, const std::string& arg);
  void counter(const char* name, double delta);
};

void log_handshake(Emitter& em, const std::string& master_secret,
                   const std::string& hop_key) {
  em.instant("tls", "keys.derived", master_secret);             // line 15: raw secret traced
  em.counter("key.entropy", static_cast<double>(hop_key[0]));   // line 16: key byte traced
}

}  // namespace fixture
