// Lint fixture: the clean twin of bad_parser.cpp — no rule may fire here.
#include <vector>

namespace fixture {

struct View {};

class Reader {
 public:
  explicit Reader(View data);
  unsigned u8();
  void expect_end() const;
};

unsigned decode_checked(View data) {
  Reader r(data);
  const unsigned v = r.u8();
  r.expect_end();
  return v;
}

unsigned decode_prefix(View data) {
  Reader r(data);  // lint: partial-read (only the header is needed here)
  return r.u8();
}

std::vector<unsigned char> make_buffer(unsigned long n) {
  return std::vector<unsigned char>(n);
}

}  // namespace fixture
