// Lint fixture (good twin): the same lexer stressors with no violation —
// nothing inside the raw string or the continued comment may be flagged.
namespace fixture {

struct Emitter {
  void instant(const char* what, int v);
};

static const char* kDoc = R"doc(
  strcpy(dst, src);
  srand(time(nullptr));
)doc";

static const int kWindow = 0x10'000;  // separators in hex literals too

void report(Emitter& trace, int session_key) {
  // fingerprints may cross; the continuation stays a comment: \
     trace.instant("swallowed", session_key);
  trace.instant("key", key_fingerprint(session_key));
}

}  // namespace fixture
