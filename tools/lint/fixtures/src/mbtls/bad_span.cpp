// Lint fixture: views into reusable scratch buffers must trip
// `dangling-span` when they escape the batch or survive a recycle.
#include <vector>

namespace fixture {

using Bytes = std::vector<unsigned char>;
struct ByteView {
  ByteView() = default;
  explicit ByteView(const Bytes& b);
};

struct RecordReader {
  void take_raw_into(Bytes& out);
};

void parse_header(ByteView v);

class Worker {
 public:
  void run_batch(RecordReader& reader) {
    reader.take_raw_into(raw_scratch_);
    ByteView header = ByteView(raw_scratch_);  // a view into the scratch
    held_view_ = header;  // line 24: stored into a member — dangles
    pending_.push_back(header);  // line 25: stored into a container
    reader.take_raw_into(raw_scratch_);  // recycle: `header` is now stale
    parse_header(header);  // line 27: use after the recycle
  }

  ByteView peek(Bytes& scratch_buf) {
    return ByteView(scratch_buf);  // line 31: returning a span into scratch
  }

 private:
  Bytes raw_scratch_;
  ByteView held_view_;
  std::vector<ByteView> pending_;
};

}  // namespace fixture
