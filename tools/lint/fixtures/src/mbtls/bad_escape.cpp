// Lint fixture: secrets laundered through neutrally-named locals must trip
// `secret-escape` — the name-based trace/queue rules cannot see these flows.
#include <vector>

namespace fixture {

using Bytes = std::vector<unsigned char>;

struct Trace {
  void instant(const char* what, const Bytes& v);
};
struct WorkPool {
  void post(Bytes v);
};

class Session {
 public:
  ~Session() { secure_wipe(master_secret_); }

  // Value-returning key material is not itself a finding: it feeds the call
  // summary, and the escape is caught at the eventual sink in the caller.
  const Bytes& exporter_material() const { return master_secret_; }

  void flush(Trace& trace, WorkPool& pool) {
    Bytes buf = master_secret_;    // neutral name, direct copy of a secret
    trace.instant("resume", buf);  // line 26: secret-escape at a trace sink

    Bytes material = exporter_material();  // tainted via the call summary
    pool.post(material);  // line 29: secret-escape at a queue sink
  }

 private:
  Bytes master_secret_;
};

}  // namespace fixture
