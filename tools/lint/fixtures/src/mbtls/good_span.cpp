// Lint fixture (good twin): copy bytes out of the scratch before the next
// batch recycle — owning copies survive; in-batch views are fine.
#include <vector>

namespace fixture {

using Bytes = std::vector<unsigned char>;
struct ByteView {
  ByteView() = default;
  explicit ByteView(const Bytes& b);
  const unsigned char* begin() const;
  const unsigned char* end() const;
};

struct RecordReader {
  void take_raw_into(Bytes& out);
};

void parse_header(ByteView v);
void parse_copy(const Bytes& b);

class Worker {
 public:
  void run_batch(RecordReader& reader) {
    reader.take_raw_into(raw_scratch_);
    ByteView header = ByteView(raw_scratch_);
    parse_header(header);  // used within the batch: fine
    held_copy_ = Bytes(header.begin(), header.end());  // owning copy
    reader.take_raw_into(raw_scratch_);
    parse_copy(held_copy_);  // the copy survives the recycle
  }

 private:
  Bytes raw_scratch_;
  Bytes held_copy_;
};

}  // namespace fixture
