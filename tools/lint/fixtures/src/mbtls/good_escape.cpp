// Lint fixture (good twin): sealed or fingerprinted values may cross trace
// and queue boundaries — the sanitizers stop taint at the sink.
#include <vector>

namespace fixture {

using Bytes = std::vector<unsigned char>;

struct Trace {
  void instant(const char* what, const Bytes& v);
};
struct WorkPool {
  void post(Bytes v);
};

class Session {
 public:
  ~Session() { secure_wipe(master_secret_); }

  const Bytes& exporter_material() const { return master_secret_; }

  void flush(Trace& trace, WorkPool& pool) {
    Bytes digest = key_fingerprint(master_secret_);  // sanitized at the source
    trace.instant("resume", digest);
    Bytes record = seal(exporter_material());  // sealed before crossing
    pool.post(record);
    trace.instant("resume", key_fingerprint(master_secret_));  // at the sink
  }

 private:
  Bytes master_secret_;
};

}  // namespace fixture
