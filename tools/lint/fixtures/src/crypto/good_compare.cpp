// Lint fixture: the clean twin of bad_compare.cpp — no rule may fire here.
namespace fixture {

using Byte = unsigned char;

bool constant_time_equal(const Byte* a, const Byte* b, unsigned long n);

bool check_tag(const Byte* mac_key, const Byte* expected, unsigned long n) {
  return constant_time_equal(mac_key, expected, n);
}

namespace ct {
bool equal(const Byte* a, const Byte* b, unsigned long n);
}

// The qualified ct::equal from util/ct.h is the sanctioned constant-time
// comparison; the secret-compare rule must not confuse it with std::equal.
bool check_tag_qualified(const Byte* mac_key, const Byte* expected, unsigned long n) {
  return ct::equal(mac_key, expected, n);
}

// Length metadata about secrets is public and may use fast compares.
bool check_len(unsigned long key_len) { return key_len == 32; }

}  // namespace fixture
