// Lint fixture: every comparison in this file must trip `secret-compare`.
// The expected findings are asserted line-by-line in tests/test_lint_rules.cpp
// — keep line numbers stable when editing.
#include <cstring>

namespace fixture {

using Byte = unsigned char;

bool check_tag(const Byte* mac_key, const Byte* expected, unsigned long n) {
  return std::memcmp(mac_key, expected, n) == 0;  // line 11: memcmp on secrets
}

bool equal(const Byte* a, const Byte* b);

bool check_session(const Byte* session_secret, const Byte* other) {
  return equal(session_secret, other);  // line 17: variable-time equal()
}

bool check_master(unsigned long derived_key, unsigned long expected) {
  return derived_key == expected;  // line 21: == on a secret-named value
}

}  // namespace fixture
