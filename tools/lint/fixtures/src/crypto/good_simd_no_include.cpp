// Lint fixture: without an intrinsic header include, `__m128i` could be any
// local typedef — the SIMD wipe obligation must NOT apply. This file would
// be a leak if bad_wipe_simd.cpp's rule fired unconditionally.

namespace fixture {

struct __m128i {
  unsigned long long lo, hi;
};

void use(__m128i v);

void expand_key(__m128i seed) {
  __m128i key_vec = seed;  // same shape as the bad fixture, but no include
  use(key_vec);
}

}  // namespace fixture
