// Lint fixture: `wipe-all-paths` must extend to `__m128i` locals in files
// that include an x86 intrinsic header — key schedules staged in SIMD
// registers spill to stack slots that outlive the function, exactly like a
// secret-named byte buffer.
#include <immintrin.h>

namespace fixture {

void use(__m128i v);
bool checked(int n);

bool expand_key(const unsigned char* key, int n) {
  __m128i key_vec = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key));
  if (!checked(n)) {
    return false;  // line 15: leaks `key_vec` — the early return skips the wipe
  }
  use(key_vec);
  secure_wipe_object(key_vec);  // the happy path wipes; the bail-out does not
  return true;
}

}  // namespace fixture
