// Lint fixture: the clean counterpart of bad_wipe_simd.cpp — a `__m128i`
// secret local wiped on every path raises nothing, and a vector local whose
// name is not secret carries no obligation at all.
#include <immintrin.h>

namespace fixture {

void use(__m128i v);
bool checked(int n);

bool expand_key(const unsigned char* key, int n) {
  __m128i key_vec = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key));
  if (!checked(n)) {
    secure_wipe_object(key_vec);
    return false;
  }
  use(key_vec);
  secure_wipe_object(key_vec);
  return true;
}

void counter_math(const unsigned char* block) {
  // Not key material: public counter state, no wipe required.
  __m128i ctr_vec = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block));
  use(ctr_vec);
}

}  // namespace fixture
