// Lint fixture: un-wiped secrets must trip `secret-wipe`.
#include <vector>

namespace fixture {

using Bytes = std::vector<unsigned char>;

struct Annotated {
  Bytes session_material;  // lint: secret  (line 9: annotated, never wiped)
};

class NamePattern {
 private:
  Bytes master_key_;  // line 14: key-named member, never wiped
};

}  // namespace fixture
