// Lint fixture: `wipe-all-paths` must catch an early return that leaks a
// secret local even though the happy path wipes it — the single-pass
// `secret-wipe` heuristic sees the wipe call and stays quiet.
#include <vector>

namespace fixture {

using Bytes = std::vector<unsigned char>;

Bytes hkdf_expand(const Bytes& prk, int n);
void install(const Bytes& okm);

bool install_keys(const Bytes& prk, bool resumed) {
  Bytes okm = hkdf_expand(prk, 64);  // secret-named owning local
  if (resumed) {
    return false;  // line 16: leaks `okm` — the early return skips the wipe
  }
  install(okm);
  secure_wipe(okm);  // the happy path *does* wipe: the old heuristic is happy
  return true;
}

}  // namespace fixture
