// Lint fixture (good twin): every exit path wipes, moves out, or returns
// the secret — `wipe-all-paths` stays quiet.
#include <utility>
#include <vector>

namespace fixture {

using Bytes = std::vector<unsigned char>;

Bytes hkdf_expand(const Bytes& prk, int n);
void install(const Bytes& okm);

bool install_keys(const Bytes& prk, bool resumed) {
  Bytes okm = hkdf_expand(prk, 64);
  if (resumed) {
    secure_wipe(okm);  // the early path wipes too
    return false;
  }
  install(okm);
  secure_wipe(okm);
  return true;
}

Bytes derive_for_caller(const Bytes& prk) {
  Bytes okm = hkdf_expand(prk, 64);
  return okm;  // bare return transfers ownership to the caller
}

class KeySchedule {
 public:
  void stash(const Bytes& prk) {
    Bytes okm = hkdf_expand(prk, 64);
    current_okm_ = std::move(okm);  // moved into a member the dtor wipes
  }
  ~KeySchedule() { secure_wipe(current_okm_); }

 private:
  Bytes current_okm_;
};

}  // namespace fixture
