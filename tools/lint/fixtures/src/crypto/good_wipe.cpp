// Lint fixture: the clean twin of bad_wipe.cpp — no rule may fire here.
#include <vector>

namespace fixture {

using Bytes = std::vector<unsigned char>;
void secure_wipe(Bytes& v);

struct Annotated {
  Bytes session_material;  // lint: secret
  ~Annotated() { secure_wipe(session_material); }
  Annotated() = default;
  Annotated(const Annotated&) = default;
  Annotated& operator=(const Annotated&) = default;
};

class NamePattern {
 public:
  ~NamePattern() { secure_wipe(master_key_); }
  NamePattern() = default;
  NamePattern(const NamePattern&) = default;
  NamePattern& operator=(const NamePattern&) = default;

 private:
  Bytes master_key_;
};

}  // namespace fixture
