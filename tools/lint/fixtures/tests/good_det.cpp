// Lint fixture: the clean twin of bad_nondet.cpp — deterministic seeding, no
// rule may fire here.
namespace fixture {

struct Drbg {
  Drbg(const char* label, unsigned long long seed);
  unsigned long long u64();
};

unsigned long long fixed_seed() {
  Drbg rng("lint-fixture", 7);
  return rng.u64();
}

}  // namespace fixture
