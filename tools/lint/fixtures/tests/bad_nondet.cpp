// Lint fixture: nondeterministic test inputs — trips `nondet-test` (and
// `banned-fn` for the rand/srand calls).
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int wall_clock_seed() {
  srand(static_cast<unsigned>(time(nullptr)));  // line 10: srand + time(nullptr)
  return rand();                                // line 11: rand()
}

unsigned hardware_seed() {
  std::random_device rd;  // line 15: random_device
  return rd();
}

}  // namespace fixture
