#include "lexer.h"

#include <cctype>

namespace mbtls::lint {

namespace {

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Multi-character punctuators we care to keep atomic, longest first.
const char* kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "==", "!=", "<=", ">=", "&&",
    "||",  "<<",  ">>",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++",  "--",
};

// Record the directives of a `// lint: a, b` comment body into `out`.
void parse_lint_comment(const std::string& comment, int line, LexedFile& out) {
  const std::string tag = "lint:";
  std::size_t pos = comment.find(tag);
  if (pos == std::string::npos) return;
  pos += tag.size();
  while (pos < comment.size()) {
    while (pos < comment.size() && (comment[pos] == ' ' || comment[pos] == ',')) ++pos;
    std::size_t end = pos;
    while (end < comment.size() && comment[end] != ',' && comment[end] != ' ' &&
           comment[end] != '\n')
      ++end;
    if (end > pos) out.annotations[line].insert(comment.substr(pos, end - pos));
    pos = end;
  }
}

}  // namespace

LexedFile lex(std::string path, const std::string& src) {
  LexedFile out;
  out.path = std::move(path);
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](TokenKind kind, std::string text) {
    out.tokens.push_back(Token{kind, std::move(text), line});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment: capture for `// lint:` directives, otherwise skip.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      parse_lint_comment(src.substr(i + 2, end - i - 2), line, out);
      i = end;
      continue;
    }
    // Block comment (may span lines; annotations only honored line-by-line).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // Preprocessor directive: skip to end of line (honoring continuations).
    // Rules never need to see inside #include / #pragma / #define.
    if (c == '#') {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string close = ")" + delim + "\"";
      std::size_t end = src.find(close, j);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k)
        if (src[k] == '\n') ++line;
      push(TokenKind::kString, "");
      i = (end == n) ? n : end + close.size();
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;
        ++j;
      }
      push(quote == '"' ? TokenKind::kString : TokenKind::kChar, "");
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(src[j])) ++j;
      push(TokenKind::kIdentifier, src.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (is_ident_char(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                         src[j - 1] == 'P'))))
        ++j;
      push(TokenKind::kNumber, src.substr(i, j - i));
      i = j;
      continue;
    }
    // Punctuation: longest match against the multi-char table.
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::size_t len = std::string(p).size();
      if (src.compare(i, len, p) == 0) {
        push(TokenKind::kPunct, p);
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      push(TokenKind::kPunct, std::string(1, c));
      ++i;
    }
  }
  return out;
}

}  // namespace mbtls::lint
