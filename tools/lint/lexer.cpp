#include "lexer.h"

#include <cctype>

namespace mbtls::lint {

namespace {

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Multi-character punctuators we care to keep atomic, longest first.
const char* kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "==", "!=", "<=", ">=", "&&",
    "||",  "<<",  ">>",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++",  "--",
};

/// True if `id` is a raw-string-literal encoding prefix (the `R` is part of
/// the identifier token as lexed: `R`, `LR`, `uR`, `UR`, `u8R`).
bool is_raw_string_prefix(const std::string& id) {
  return id == "R" || id == "LR" || id == "uR" || id == "UR" || id == "u8R";
}

// Record the directives of a `// lint: a, b` comment body into `out`.
void parse_lint_comment(const std::string& comment, int line, LexedFile& out) {
  const std::string tag = "lint:";
  std::size_t pos = comment.find(tag);
  if (pos == std::string::npos) return;
  pos += tag.size();
  while (pos < comment.size()) {
    while (pos < comment.size() && (comment[pos] == ' ' || comment[pos] == ',')) ++pos;
    std::size_t end = pos;
    while (end < comment.size() && comment[end] != ',' && comment[end] != ' ' &&
           comment[end] != '\n')
      ++end;
    if (end > pos) out.annotations[line].insert(comment.substr(pos, end - pos));
    pos = end;
  }
}

}  // namespace

LexedFile lex(std::string path, const std::string& src) {
  LexedFile out;
  out.path = std::move(path);
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](TokenKind kind, std::string text) {
    out.tokens.push_back(Token{kind, std::move(text), line});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Backslash line continuation in ordinary code: splice the lines (the
    // token stream must not see a stray '\' punct, and the next line is a
    // continuation, not a fresh statement).
    if (c == '\\' && i + 1 < n && (src[i + 1] == '\n' || (src[i + 1] == '\r' && i + 2 < n &&
                                                          src[i + 2] == '\n'))) {
      i += (src[i + 1] == '\n') ? 2 : 3;
      ++line;
      continue;
    }
    // Line comment: capture for `// lint:` directives, otherwise skip. A
    // trailing backslash splices the next physical line into the comment, so
    // keep consuming (otherwise the continuation would be lexed as code).
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const int comment_line = line;
      std::string body;
      std::size_t j = i + 2;
      while (true) {
        std::size_t end = src.find('\n', j);
        if (end == std::string::npos) end = n;
        std::size_t text_end = end;
        while (text_end > j && src[text_end - 1] == '\r') --text_end;
        const bool continued = text_end > j && src[text_end - 1] == '\\';
        body.append(src, j, (continued ? text_end - 1 : text_end) - j);
        if (!continued || end == n) {
          i = end;
          break;
        }
        ++line;
        j = end + 1;
      }
      parse_lint_comment(body, comment_line, out);
      continue;
    }
    // Block comment (may span lines; annotations only honored line-by-line).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // Preprocessor directive: record `#include` targets (has_intrinsic_include
    // keys off them), then skip to end of line (honoring continuations) —
    // the token stream never sees inside #pragma / #define bodies.
    if (c == '#') {
      std::string directive;
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        directive += src[i];
        ++i;
      }
      std::size_t p = 1;  // past '#'
      while (p < directive.size() && std::isspace(static_cast<unsigned char>(directive[p]))) ++p;
      if (directive.compare(p, 7, "include") == 0) {
        p += 7;
        while (p < directive.size() && std::isspace(static_cast<unsigned char>(directive[p])))
          ++p;
        if (p < directive.size() && (directive[p] == '<' || directive[p] == '"')) {
          const char close = directive[p] == '<' ? '>' : '"';
          const std::size_t end = directive.find(close, p + 1);
          if (end != std::string::npos) {
            out.includes.insert(directive.substr(p + 1, end - p - 1));
          }
        }
      }
      continue;
    }
    // Raw string literal, with or without an encoding prefix. The delimiter
    // is at most 16 chars and may not contain whitespace — a malformed
    // candidate falls through to ordinary string lexing instead of scanning
    // to EOF.
    auto lex_raw_string = [&](std::size_t quote) -> bool {
      // `quote` is the index of the '"' that follows the R prefix.
      std::size_t j = quote + 1;
      std::string delim;
      while (j < n && src[j] != '(' && delim.size() <= 16 &&
             !std::isspace(static_cast<unsigned char>(src[j])))
        delim += src[j++];
      if (j >= n || src[j] != '(') return false;
      const std::string close = ")" + delim + "\"";
      std::size_t end = src.find(close, j);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k)
        if (src[k] == '\n') ++line;
      push(TokenKind::kString, "");
      i = (end == n) ? n : end + close.size();
      return true;
    };
    if (c == 'R' && i + 1 < n && src[i + 1] == '"' && lex_raw_string(i + 1)) continue;
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;
        ++j;
      }
      push(quote == '"' ? TokenKind::kString : TokenKind::kChar, "");
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(src[j])) ++j;
      std::string id = src.substr(i, j - i);
      // Prefixed raw string (`u8R"(...)"` etc.): the prefix must not be
      // emitted as an identifier, or the literal body would be lexed as code.
      if (is_raw_string_prefix(id) && j < n && src[j] == '"' && lex_raw_string(j)) continue;
      push(TokenKind::kIdentifier, std::move(id));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (is_ident_char(src[j]) || src[j] == '.' ||
                       // Digit separator: 1'000'000 is one number token, not
                       // a number followed by a char literal.
                       (src[j] == '\'' && j + 1 < n &&
                        std::isalnum(static_cast<unsigned char>(src[j + 1]))) ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                         src[j - 1] == 'P'))))
        ++j;
      push(TokenKind::kNumber, src.substr(i, j - i));
      i = j;
      continue;
    }
    // Punctuation: longest match against the multi-char table.
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::size_t len = std::string(p).size();
      if (src.compare(i, len, p) == 0) {
        push(TokenKind::kPunct, p);
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      push(TokenKind::kPunct, std::string(1, c));
      ++i;
    }
  }
  return out;
}

}  // namespace mbtls::lint
