#include "cfg.h"

#include <algorithm>
#include <set>

namespace mbtls::lint {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokenKind::kPunct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == TokenKind::kIdentifier && t.text == s;
}

/// Index just past the matching close for the open bracket at `open`
/// (one of `(`/`[`/`{`), or `end` if unbalanced.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open, std::size_t end) {
  const std::string& o = toks[open].text;
  const char* c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i < end; ++i) {
    if (toks[i].kind == TokenKind::kPunct) {
      if (toks[i].text == o) ++depth;
      if (toks[i].text == c && --depth == 0) return i + 1;
    }
  }
  return end;
}

/// Keywords that can precede `(` without being a function name.
const std::set<std::string>& non_name_keywords() {
  static const std::set<std::string> kSet = {
      "if",     "while",  "for",      "switch",   "catch",  "return",
      "sizeof", "alignof", "decltype", "noexcept", "throw",  "new",
      "delete", "case",   "default",  "do",       "else",   "alignas",
      "static_assert",
  };
  return kSet;
}

const std::set<std::string>& cv_like_keywords() {
  static const std::set<std::string> kSet = {
      "const", "volatile", "unsigned", "signed", "struct", "class",
      "enum",  "typename", "constexpr", "register", "long", "short",
  };
  return kSet;
}

/// From the decoration run after a parameter list's `)`, decide whether a
/// function *body* follows, and if so return the index of its `{`.
/// Handles cv/ref qualifiers, noexcept(...), override/final, trailing
/// return types, and constructor initializer lists.
std::size_t find_body_brace(const std::vector<Token>& toks, std::size_t after_close) {
  const std::size_t n = toks.size();
  std::size_t i = after_close;
  bool in_ctor_init = false;
  while (i < n) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) return i;
    if (is_punct(t, ";") || is_punct(t, "=") || is_punct(t, ")") || is_punct(t, "]") ||
        is_punct(t, "}"))
      return n;  // declaration, defaulted, or mid-expression call
    if (is_punct(t, ",")) {
      // Commas separate constructor initializers; anywhere else they mean
      // this was a call inside a larger expression.
      if (!in_ctor_init) return n;
      ++i;
      continue;
    }
    if (is_punct(t, ":")) {
      in_ctor_init = true;
      ++i;
      continue;
    }
    if (is_punct(t, "(")) {
      // noexcept(...) / an initializer's argument list.
      i = skip_balanced(toks, i, n);
      continue;
    }
    if (in_ctor_init && t.kind == TokenKind::kIdentifier && i + 1 < n &&
        is_punct(toks[i + 1], "{")) {
      // Brace initializer `b_{y}`: skip it, it is not the body.
      i = skip_balanced(toks, i + 1, n);
      continue;
    }
    // Trailing return types and qualifier words pass through; any other
    // punctuation cannot appear between `)` and a body `{`.
    if (t.kind == TokenKind::kIdentifier || is_punct(t, "::") || is_punct(t, "->") ||
        is_punct(t, "<") || is_punct(t, ">") || is_punct(t, "*") || is_punct(t, "&") ||
        is_punct(t, "&&")) {
      ++i;
      continue;
    }
    return n;
  }
  return n;
}

/// Extract parameter names from the token span inside the parens.
std::vector<Param> extract_params(const std::vector<Token>& toks, std::size_t begin,
                                  std::size_t end) {
  std::vector<Param> out;
  std::size_t seg_begin = begin;
  int depth = 0;
  auto flush = [&](std::size_t seg_end) {
    // Cut at a top-level `=` (default argument).
    std::size_t cut = seg_end;
    int d = 0;
    for (std::size_t i = seg_begin; i < seg_end; ++i) {
      if (toks[i].kind != TokenKind::kPunct) continue;
      if (toks[i].text == "(" || toks[i].text == "{" || toks[i].text == "[" ||
          toks[i].text == "<")
        ++d;
      if (toks[i].text == ")" || toks[i].text == "}" || toks[i].text == "]" ||
          toks[i].text == ">")
        --d;
      if (toks[i].text == "=" && d == 0) {
        cut = i;
        break;
      }
    }
    // Parameter name = last identifier before the cut that is not a
    // cv/type keyword; a segment with fewer than two non-cv identifiers is
    // an unnamed parameter (`void f(int)`).
    int ident_count = 0;
    std::size_t name_idx = cut;
    int d2 = 0;
    for (std::size_t i = seg_begin; i < cut; ++i) {
      if (toks[i].kind == TokenKind::kPunct) {
        if (toks[i].text == "(" || toks[i].text == "{" || toks[i].text == "<") ++d2;
        if (toks[i].text == ")" || toks[i].text == "}" || toks[i].text == ">")
          d2 = std::max(0, d2 - 1);
        continue;
      }
      if (toks[i].kind != TokenKind::kIdentifier || d2 > 0) continue;
      if (cv_like_keywords().count(toks[i].text)) continue;
      ++ident_count;
      name_idx = i;
    }
    if (ident_count >= 2 && name_idx < cut) {
      out.push_back(Param{toks[name_idx].text, toks[name_idx].line});
    }
    seg_begin = seg_end + 1;
  };
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind == TokenKind::kPunct) {
      if (toks[i].text == "(" || toks[i].text == "{" || toks[i].text == "[") ++depth;
      if (toks[i].text == ")" || toks[i].text == "}" || toks[i].text == "]")
        depth = std::max(0, depth - 1);
      if (toks[i].text == "," && depth == 0) flush(i);
    }
  }
  if (seg_begin < end) flush(end);
  return out;
}

// -------------------------------------------------------------- CFG builder

class CfgBuilder {
 public:
  explicit CfgBuilder(const std::vector<Token>& toks) : toks_(toks) {}

  void build(Cfg& cfg) {
    cfg_ = &cfg;
    cfg.blocks.clear();
    cfg.entry = new_block();
    cfg.exit_id = new_block();
    cfg.throw_id = new_block();
    cur_ = cfg.entry;
    parse_seq(cfg.body_begin, cfg.body_end, /*switch_head=*/-1);
    edge(cur_, cfg.exit_id);  // falling off the end
  }

 private:
  int new_block() {
    cfg_->blocks.emplace_back();
    return static_cast<int>(cfg_->blocks.size()) - 1;
  }
  void edge(int from, int to) {
    auto& s = cfg_->blocks[from].succs;
    if (std::find(s.begin(), s.end(), to) == s.end()) s.push_back(to);
  }
  void append(Stmt::Kind kind, std::size_t b, std::size_t e) {
    if (b >= e) return;
    cfg_->blocks[cur_].stmts.push_back(Stmt{kind, b, e, toks_[b].line});
  }
  /// End of the plain statement starting at `pos`: past the `;` at bracket
  /// depth 0. Mid-statement braces (lambdas, init lists, local structs) are
  /// skipped whole.
  std::size_t stmt_end(std::size_t pos, std::size_t end) const {
    std::size_t i = pos;
    while (i < end) {
      const Token& t = toks_[i];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(" || t.text == "[" || t.text == "{") {
          i = skip_balanced(toks_, i, end);
          continue;
        }
        if (t.text == ";") return i + 1;
        if (t.text == "}") return i;  // ran off the enclosing scope
      }
      ++i;
    }
    return end;
  }

  void parse_seq(std::size_t begin, std::size_t end, int switch_head) {
    std::size_t pos = begin;
    bool first_label_seen = false;
    while (pos < end) {
      // Inside a switch body: each `case ...:` / `default:` run starts a new
      // block entered from the switch head, with fall-through from the
      // previous block.
      if (switch_head >= 0 && (is_ident(toks_[pos], "case") || is_ident(toks_[pos], "default"))) {
        std::size_t lbl = pos;
        while (lbl < end && !is_punct(toks_[lbl], ":")) ++lbl;
        const int prev = cur_;
        cur_ = new_block();
        edge(switch_head, cur_);
        if (first_label_seen) edge(prev, cur_);  // fall-through
        first_label_seen = true;
        pos = lbl + 1;
        continue;
      }
      const std::size_t next = parse_stmt(pos, end);
      pos = (next > pos) ? next : pos + 1;
    }
  }

  /// Parse one statement starting at `pos`; returns the index just past it.
  std::size_t parse_stmt(std::size_t pos, std::size_t end) {
    const Token& t = toks_[pos];

    if (is_punct(t, ";")) return pos + 1;
    if (is_punct(t, "{")) {
      const std::size_t close = skip_balanced(toks_, pos, end);
      parse_seq(pos + 1, close - 1 < end ? close - 1 : end, /*switch_head=*/-1);
      return close;
    }

    if (is_ident(t, "if")) return parse_if(pos, end);
    if (is_ident(t, "while")) return parse_while(pos, end);
    if (is_ident(t, "do")) return parse_do(pos, end);
    if (is_ident(t, "for")) return parse_for(pos, end);
    if (is_ident(t, "switch")) return parse_switch(pos, end);
    if (is_ident(t, "try")) return parse_try(pos, end);

    if (is_ident(t, "return") || is_ident(t, "throw")) {
      const bool is_ret = t.text == "return";
      const std::size_t e = stmt_end(pos, end);
      append(is_ret ? Stmt::Kind::kReturn : Stmt::Kind::kThrow, pos, e);
      edge(cur_, is_ret ? cfg_->exit_id : cfg_->throw_id);
      cur_ = new_block();  // anything after is unreachable from here
      return e;
    }
    if (is_ident(t, "break") || is_ident(t, "continue")) {
      const bool is_break = t.text == "break";
      const std::size_t e = stmt_end(pos, end);
      append(is_break ? Stmt::Kind::kBreak : Stmt::Kind::kContinue, pos, e);
      const auto& stack = is_break ? break_targets_ : continue_targets_;
      edge(cur_, stack.empty() ? cfg_->exit_id : stack.back());
      cur_ = new_block();
      return e;
    }

    const std::size_t e = stmt_end(pos, end);
    append(Stmt::Kind::kPlain, pos, e);
    return e;
  }

  std::size_t parse_if(std::size_t pos, std::size_t end) {
    std::size_t open = pos + 1;
    // `if constexpr (...)`
    if (open < end && is_ident(toks_[open], "constexpr")) ++open;
    if (open >= end || !is_punct(toks_[open], "(")) return stmt_end(pos, end);
    const std::size_t cond_close = skip_balanced(toks_, open, end);
    append(Stmt::Kind::kCond, pos, cond_close);
    const int head = cur_;

    cur_ = new_block();
    edge(head, cur_);
    std::size_t p = parse_stmt(cond_close, end);
    const int then_end = cur_;

    if (p < end && is_ident(toks_[p], "else")) {
      cur_ = new_block();
      edge(head, cur_);
      p = parse_stmt(p + 1, end);
      const int else_end = cur_;
      const int merge = new_block();
      edge(then_end, merge);
      edge(else_end, merge);
      cur_ = merge;
    } else {
      const int merge = new_block();
      edge(then_end, merge);
      edge(head, merge);
      cur_ = merge;
    }
    return p;
  }

  std::size_t parse_while(std::size_t pos, std::size_t end) {
    const std::size_t open = pos + 1;
    if (open >= end || !is_punct(toks_[open], "(")) return stmt_end(pos, end);
    const std::size_t cond_close = skip_balanced(toks_, open, end);

    const int head = new_block();
    edge(cur_, head);
    cur_ = head;
    append(Stmt::Kind::kCond, pos, cond_close);

    const int body = new_block();
    const int after = new_block();
    edge(head, body);
    edge(head, after);
    continue_targets_.push_back(head);
    break_targets_.push_back(after);
    cur_ = body;
    const std::size_t p = parse_stmt(cond_close, end);
    edge(cur_, head);  // back edge
    continue_targets_.pop_back();
    break_targets_.pop_back();
    cur_ = after;
    return p;
  }

  std::size_t parse_do(std::size_t pos, std::size_t end) {
    const int body = new_block();
    edge(cur_, body);
    const int cond = new_block();
    const int after = new_block();
    continue_targets_.push_back(cond);
    break_targets_.push_back(after);
    cur_ = body;
    std::size_t p = parse_stmt(pos + 1, end);
    edge(cur_, cond);
    continue_targets_.pop_back();
    break_targets_.pop_back();

    // `while (...);`
    cur_ = cond;
    if (p < end && is_ident(toks_[p], "while") && p + 1 < end && is_punct(toks_[p + 1], "(")) {
      const std::size_t cond_close = skip_balanced(toks_, p + 1, end);
      append(Stmt::Kind::kCond, p, cond_close);
      p = cond_close;
      if (p < end && is_punct(toks_[p], ";")) ++p;
    }
    edge(cond, body);
    edge(cond, after);
    cur_ = after;
    return p;
  }

  std::size_t parse_for(std::size_t pos, std::size_t end) {
    const std::size_t open = pos + 1;
    if (open >= end || !is_punct(toks_[open], "(")) return stmt_end(pos, end);
    const std::size_t paren_end = skip_balanced(toks_, open, end);  // past `)`

    // Find top-level `;`s inside the parens: classic for has two,
    // range-for has none.
    std::vector<std::size_t> semis;
    int depth = 0;
    for (std::size_t i = open + 1; i + 1 < paren_end; ++i) {
      if (toks_[i].kind != TokenKind::kPunct) continue;
      if (toks_[i].text == "(" || toks_[i].text == "{" || toks_[i].text == "[") ++depth;
      if (toks_[i].text == ")" || toks_[i].text == "}" || toks_[i].text == "]") --depth;
      if (toks_[i].text == ";" && depth == 0) semis.push_back(i);
    }

    const int after = new_block();
    const int head = new_block();
    int inc_block = -1;

    if (semis.size() >= 2) {
      append(Stmt::Kind::kPlain, open + 1, semis[0]);  // init runs once, before head
      edge(cur_, head);
      cur_ = head;
      append(Stmt::Kind::kCond, semis[0] + 1, semis[1]);  // may be empty
      inc_block = new_block();
    } else {
      // Range-for: the whole header is the loop head.
      edge(cur_, head);
      cur_ = head;
      append(Stmt::Kind::kCond, pos, paren_end);
    }

    const int body = new_block();
    edge(head, body);
    edge(head, after);
    continue_targets_.push_back(inc_block >= 0 ? inc_block : head);
    break_targets_.push_back(after);
    cur_ = body;
    const std::size_t p = parse_stmt(paren_end, end);
    if (inc_block >= 0) {
      edge(cur_, inc_block);
      cur_ = inc_block;
      append(Stmt::Kind::kPlain, semis[1] + 1, paren_end - 1);
      edge(inc_block, head);
    } else {
      edge(cur_, head);
    }
    continue_targets_.pop_back();
    break_targets_.pop_back();
    cur_ = after;
    return p;
  }

  std::size_t parse_switch(std::size_t pos, std::size_t end) {
    const std::size_t open = pos + 1;
    if (open >= end || !is_punct(toks_[open], "(")) return stmt_end(pos, end);
    const std::size_t cond_close = skip_balanced(toks_, open, end);
    append(Stmt::Kind::kCond, pos, cond_close);
    const int head = cur_;
    const int after = new_block();

    if (cond_close < end && is_punct(toks_[cond_close], "{")) {
      const std::size_t body_close = skip_balanced(toks_, cond_close, end);
      break_targets_.push_back(after);
      cur_ = new_block();  // statements before the first label are dead code
      parse_seq(cond_close + 1, body_close - 1, /*switch_head=*/head);
      edge(cur_, after);  // fall off the last case
      break_targets_.pop_back();
      // Conservative: a missing/unreached default skips the body entirely.
      edge(head, after);
      cur_ = after;
      return body_close;
    }
    cur_ = after;
    edge(head, after);
    return cond_close;
  }

  std::size_t parse_try(std::size_t pos, std::size_t end) {
    const int pre = cur_;
    std::size_t p = pos + 1;
    if (p >= end || !is_punct(toks_[p], "{")) return stmt_end(pos, end);
    p = parse_stmt(p, end);  // the try compound, parsed in normal flow
    const int merge = new_block();
    edge(cur_, merge);
    while (p < end && is_ident(toks_[p], "catch")) {
      std::size_t q = p + 1;
      if (q < end && is_punct(toks_[q], "(")) q = skip_balanced(toks_, q, end);
      const int handler = new_block();
      // An exception can arise anywhere in the try body; entering the
      // handler from the pre-try state is the conservative approximation.
      edge(pre, handler);
      cur_ = handler;
      if (q < end && is_punct(toks_[q], "{")) q = parse_stmt(q, end);
      edge(cur_, merge);
      p = q;
    }
    cur_ = merge;
    return p;
  }

  const std::vector<Token>& toks_;
  Cfg* cfg_ = nullptr;
  int cur_ = 0;
  std::vector<int> break_targets_;
  std::vector<int> continue_targets_;
};

}  // namespace

std::vector<Cfg> build_cfgs(const LexedFile& f) {
  std::vector<Cfg> out;
  const auto& toks = f.tokens;
  const std::size_t n = toks.size();

  for (std::size_t i = 1; i < n; ++i) {
    if (!is_punct(toks[i], "(")) continue;
    const Token& name = toks[i - 1];
    if (name.kind != TokenKind::kIdentifier) continue;
    if (non_name_keywords().count(name.text)) continue;
    const std::size_t close = skip_balanced(toks, i, n);
    if (close >= n) continue;
    const std::size_t brace = find_body_brace(toks, close);
    if (brace >= n) continue;
    const std::size_t body_close = skip_balanced(toks, brace, n);

    Cfg cfg;
    cfg.name = name.text;
    cfg.line = name.line;
    cfg.body_begin = brace + 1;
    cfg.body_end = body_close > brace ? body_close - 1 : brace + 1;
    cfg.params = extract_params(toks, i + 1, close - 1);
    // Qualified spelling: walk `A::B::name` backwards.
    std::size_t q = i - 1;
    std::string qual = name.text;
    while (q >= 2 && is_punct(toks[q - 1], "::") && toks[q - 2].kind == TokenKind::kIdentifier) {
      qual = toks[q - 2].text + "::" + qual;
      q -= 2;
    }
    cfg.qual_name = std::move(qual);

    CfgBuilder builder(toks);
    builder.build(cfg);
    out.push_back(std::move(cfg));
  }
  return out;
}

std::vector<bool> reachable_blocks(const Cfg& cfg) {
  std::vector<bool> seen(cfg.blocks.size(), false);
  std::vector<int> stack = {cfg.entry};
  seen[cfg.entry] = true;
  while (!stack.empty()) {
    const int b = stack.back();
    stack.pop_back();
    for (int s : cfg.blocks[b].succs) {
      if (!seen[s]) {
        seen[s] = true;
        stack.push_back(s);
      }
    }
  }
  return seen;
}

}  // namespace mbtls::lint
