// Flow-sensitive taint analysis over cfg.h's basic-block graphs.
//
// Layer 2 of mbtls-lint: a may-taint dataflow engine with repo-wide
// interprocedural call summaries. Taint *sources* are secret-named
// parameters and members, declarations annotated `// lint: secret`, and
// calls to functions whose summary says they return secret material. Taint
// *sinks* are trace emitters, worker-queue submissions, long-lived
// containers, and (via summaries) value returns. Sanitizers —
// key_fingerprint(), seal(), seal_into() — stop propagation.
//
// Three rule families run on top of the engine:
//
//  * trace-no-secret / queue-no-secret — reimplemented on dataflow: a
//    directly secret-named argument keeps the legacy rule id, and a secret
//    laundered into a neutrally-named local (including across one or more
//    call boundaries, via summaries) is reported as `secret-escape`.
//  * wipe-all-paths — every *normal* CFG exit of a function holding a
//    secret-named owning local must reach secure_wipe()/secure_wipe_object()
//    (or transfer ownership out: `return k`, `std::move(k)`, `swap`).
//    Path-sensitive: a wiped happy path with an unwiped early return is a
//    finding at the leaking return. Throw exits are exempt — unwind cleanup
//    belongs to wiping destructors, not inline wipe calls.
//  * dangling-span — views (ByteView/span/pointer/.data()) into reusable
//    scratch buffers (identifiers with a `scratch` segment, or
//    take_raw_into() targets) must not escape into members/containers or be
//    used after the scratch is recycled by the next take_raw_into()/clear()/
//    resize().
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cfg.h"
#include "lexer.h"
#include "rules.h"

namespace mbtls::lint {

/// Interprocedural facts about one function name. Same-named functions
/// (overloads, same-named methods on different classes) are merged
/// conservatively: if any of them returns a secret, calls to that name are
/// treated as secret-returning.
struct FnSummary {
  bool returns_secret = false;
  std::vector<int> wiped_params;  // 0-based indices of by-ref params wiped

  bool operator==(const FnSummary& o) const {
    return returns_secret == o.returns_secret && wiped_params == o.wiped_params;
  }
};

using Summaries = std::map<std::string, FnSummary>;

/// One translation unit, lexed and CFG-built, ready for the engine.
struct AnalyzedFile {
  const LexedFile* file = nullptr;
  std::vector<Cfg> cfgs;
};

/// Build CFGs for every file.
std::vector<AnalyzedFile> analyze_files(const std::vector<LexedFile>& files);

/// Compute call summaries with repeated fixed-point passes over all TUs
/// (pass N sees pass N-1's summaries; stops when stable, bounded).
Summaries compute_summaries(const std::vector<AnalyzedFile>& files);

/// Run the dataflow rule families over one file and append findings.
void run_dataflow_rules(const AnalyzedFile& af, const Summaries& summaries,
                        std::vector<Finding>& out);

}  // namespace mbtls::lint
