# Empty dependencies file for bench_table2_viability.
# This may be replaced when dependencies are built.
