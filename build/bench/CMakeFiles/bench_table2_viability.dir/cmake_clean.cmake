file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_viability.dir/bench_table2_viability.cpp.o"
  "CMakeFiles/bench_table2_viability.dir/bench_table2_viability.cpp.o.d"
  "bench_table2_viability"
  "bench_table2_viability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_viability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
