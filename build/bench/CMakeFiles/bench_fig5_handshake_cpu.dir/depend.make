# Empty dependencies file for bench_fig5_handshake_cpu.
# This may be replaced when dependencies are built.
