file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_threats.dir/bench_table1_threats.cpp.o"
  "CMakeFiles/bench_table1_threats.dir/bench_table1_threats.cpp.o.d"
  "bench_table1_threats"
  "bench_table1_threats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_threats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
