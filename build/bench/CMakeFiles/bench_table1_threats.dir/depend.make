# Empty dependencies file for bench_table1_threats.
# This may be replaced when dependencies are built.
