file(REMOVE_RECURSE
  "CMakeFiles/bench_legacy_interop.dir/bench_legacy_interop.cpp.o"
  "CMakeFiles/bench_legacy_interop.dir/bench_legacy_interop.cpp.o.d"
  "bench_legacy_interop"
  "bench_legacy_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_legacy_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
