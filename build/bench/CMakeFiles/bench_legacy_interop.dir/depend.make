# Empty dependencies file for bench_legacy_interop.
# This may be replaced when dependencies are built.
