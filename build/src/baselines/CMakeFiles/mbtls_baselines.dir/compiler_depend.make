# Empty compiler generated dependencies file for mbtls_baselines.
# This may be replaced when dependencies are built.
