file(REMOVE_RECURSE
  "CMakeFiles/mbtls_baselines.dir/mctls.cpp.o"
  "CMakeFiles/mbtls_baselines.dir/mctls.cpp.o.d"
  "CMakeFiles/mbtls_baselines.dir/naive_shared_key.cpp.o"
  "CMakeFiles/mbtls_baselines.dir/naive_shared_key.cpp.o.d"
  "CMakeFiles/mbtls_baselines.dir/split_tls.cpp.o"
  "CMakeFiles/mbtls_baselines.dir/split_tls.cpp.o.d"
  "libmbtls_baselines.a"
  "libmbtls_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtls_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
