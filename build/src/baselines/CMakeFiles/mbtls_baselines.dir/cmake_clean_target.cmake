file(REMOVE_RECURSE
  "libmbtls_baselines.a"
)
