file(REMOVE_RECURSE
  "libmbtls_rsa.a"
)
