# Empty compiler generated dependencies file for mbtls_rsa.
# This may be replaced when dependencies are built.
