file(REMOVE_RECURSE
  "CMakeFiles/mbtls_rsa.dir/rsa.cpp.o"
  "CMakeFiles/mbtls_rsa.dir/rsa.cpp.o.d"
  "libmbtls_rsa.a"
  "libmbtls_rsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtls_rsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
