# Empty dependencies file for mbtls_bignum.
# This may be replaced when dependencies are built.
