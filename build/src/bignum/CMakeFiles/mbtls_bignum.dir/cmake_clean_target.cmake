file(REMOVE_RECURSE
  "libmbtls_bignum.a"
)
