file(REMOVE_RECURSE
  "CMakeFiles/mbtls_bignum.dir/bignum.cpp.o"
  "CMakeFiles/mbtls_bignum.dir/bignum.cpp.o.d"
  "CMakeFiles/mbtls_bignum.dir/prime.cpp.o"
  "CMakeFiles/mbtls_bignum.dir/prime.cpp.o.d"
  "libmbtls_bignum.a"
  "libmbtls_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtls_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
