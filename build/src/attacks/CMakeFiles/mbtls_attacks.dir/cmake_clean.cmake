file(REMOVE_RECURSE
  "CMakeFiles/mbtls_attacks.dir/attacks.cpp.o"
  "CMakeFiles/mbtls_attacks.dir/attacks.cpp.o.d"
  "libmbtls_attacks.a"
  "libmbtls_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtls_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
