# Empty compiler generated dependencies file for mbtls_attacks.
# This may be replaced when dependencies are built.
