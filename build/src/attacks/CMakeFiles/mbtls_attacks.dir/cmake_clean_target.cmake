file(REMOVE_RECURSE
  "libmbtls_attacks.a"
)
