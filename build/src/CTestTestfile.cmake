# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("crypto")
subdirs("bignum")
subdirs("ec")
subdirs("rsa")
subdirs("asn1")
subdirs("x509")
subdirs("net")
subdirs("sgx")
subdirs("tls")
subdirs("mbtls")
subdirs("baselines")
subdirs("http")
subdirs("mbox")
subdirs("attacks")
