# Empty compiler generated dependencies file for mbtls_asn1.
# This may be replaced when dependencies are built.
