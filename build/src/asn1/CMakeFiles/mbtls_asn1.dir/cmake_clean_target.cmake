file(REMOVE_RECURSE
  "libmbtls_asn1.a"
)
