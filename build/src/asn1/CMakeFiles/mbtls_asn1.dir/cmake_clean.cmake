file(REMOVE_RECURSE
  "CMakeFiles/mbtls_asn1.dir/der.cpp.o"
  "CMakeFiles/mbtls_asn1.dir/der.cpp.o.d"
  "libmbtls_asn1.a"
  "libmbtls_asn1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtls_asn1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
