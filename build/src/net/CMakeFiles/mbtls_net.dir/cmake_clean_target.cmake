file(REMOVE_RECURSE
  "libmbtls_net.a"
)
