# Empty dependencies file for mbtls_net.
# This may be replaced when dependencies are built.
