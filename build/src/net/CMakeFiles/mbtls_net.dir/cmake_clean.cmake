file(REMOVE_RECURSE
  "CMakeFiles/mbtls_net.dir/network.cpp.o"
  "CMakeFiles/mbtls_net.dir/network.cpp.o.d"
  "CMakeFiles/mbtls_net.dir/simulator.cpp.o"
  "CMakeFiles/mbtls_net.dir/simulator.cpp.o.d"
  "CMakeFiles/mbtls_net.dir/tcp.cpp.o"
  "CMakeFiles/mbtls_net.dir/tcp.cpp.o.d"
  "libmbtls_net.a"
  "libmbtls_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtls_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
