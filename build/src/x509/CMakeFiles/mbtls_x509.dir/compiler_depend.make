# Empty compiler generated dependencies file for mbtls_x509.
# This may be replaced when dependencies are built.
