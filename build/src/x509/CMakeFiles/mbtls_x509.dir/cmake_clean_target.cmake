file(REMOVE_RECURSE
  "libmbtls_x509.a"
)
