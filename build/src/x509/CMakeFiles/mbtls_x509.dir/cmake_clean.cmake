file(REMOVE_RECURSE
  "CMakeFiles/mbtls_x509.dir/certificate.cpp.o"
  "CMakeFiles/mbtls_x509.dir/certificate.cpp.o.d"
  "CMakeFiles/mbtls_x509.dir/keys.cpp.o"
  "CMakeFiles/mbtls_x509.dir/keys.cpp.o.d"
  "CMakeFiles/mbtls_x509.dir/verify.cpp.o"
  "CMakeFiles/mbtls_x509.dir/verify.cpp.o.d"
  "libmbtls_x509.a"
  "libmbtls_x509.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtls_x509.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
