# Empty compiler generated dependencies file for mbtls_sgx.
# This may be replaced when dependencies are built.
