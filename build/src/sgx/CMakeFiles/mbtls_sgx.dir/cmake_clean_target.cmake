file(REMOVE_RECURSE
  "libmbtls_sgx.a"
)
