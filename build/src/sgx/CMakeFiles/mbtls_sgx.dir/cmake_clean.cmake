file(REMOVE_RECURSE
  "CMakeFiles/mbtls_sgx.dir/attestation.cpp.o"
  "CMakeFiles/mbtls_sgx.dir/attestation.cpp.o.d"
  "CMakeFiles/mbtls_sgx.dir/enclave.cpp.o"
  "CMakeFiles/mbtls_sgx.dir/enclave.cpp.o.d"
  "libmbtls_sgx.a"
  "libmbtls_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtls_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
