file(REMOVE_RECURSE
  "libmbtls_core.a"
)
