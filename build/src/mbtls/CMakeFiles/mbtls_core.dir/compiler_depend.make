# Empty compiler generated dependencies file for mbtls_core.
# This may be replaced when dependencies are built.
