file(REMOVE_RECURSE
  "CMakeFiles/mbtls_core.dir/client.cpp.o"
  "CMakeFiles/mbtls_core.dir/client.cpp.o.d"
  "CMakeFiles/mbtls_core.dir/middlebox.cpp.o"
  "CMakeFiles/mbtls_core.dir/middlebox.cpp.o.d"
  "CMakeFiles/mbtls_core.dir/server.cpp.o"
  "CMakeFiles/mbtls_core.dir/server.cpp.o.d"
  "CMakeFiles/mbtls_core.dir/types.cpp.o"
  "CMakeFiles/mbtls_core.dir/types.cpp.o.d"
  "libmbtls_core.a"
  "libmbtls_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtls_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
