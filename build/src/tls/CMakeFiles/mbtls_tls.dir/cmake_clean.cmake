file(REMOVE_RECURSE
  "CMakeFiles/mbtls_tls.dir/common.cpp.o"
  "CMakeFiles/mbtls_tls.dir/common.cpp.o.d"
  "CMakeFiles/mbtls_tls.dir/dh.cpp.o"
  "CMakeFiles/mbtls_tls.dir/dh.cpp.o.d"
  "CMakeFiles/mbtls_tls.dir/engine.cpp.o"
  "CMakeFiles/mbtls_tls.dir/engine.cpp.o.d"
  "CMakeFiles/mbtls_tls.dir/messages.cpp.o"
  "CMakeFiles/mbtls_tls.dir/messages.cpp.o.d"
  "CMakeFiles/mbtls_tls.dir/prf.cpp.o"
  "CMakeFiles/mbtls_tls.dir/prf.cpp.o.d"
  "CMakeFiles/mbtls_tls.dir/record.cpp.o"
  "CMakeFiles/mbtls_tls.dir/record.cpp.o.d"
  "CMakeFiles/mbtls_tls.dir/session.cpp.o"
  "CMakeFiles/mbtls_tls.dir/session.cpp.o.d"
  "libmbtls_tls.a"
  "libmbtls_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtls_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
