# Empty compiler generated dependencies file for mbtls_tls.
# This may be replaced when dependencies are built.
