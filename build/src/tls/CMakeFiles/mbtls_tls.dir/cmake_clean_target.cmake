file(REMOVE_RECURSE
  "libmbtls_tls.a"
)
