# Empty dependencies file for mbtls_crypto.
# This may be replaced when dependencies are built.
