file(REMOVE_RECURSE
  "libmbtls_crypto.a"
)
