file(REMOVE_RECURSE
  "CMakeFiles/mbtls_crypto.dir/aes.cpp.o"
  "CMakeFiles/mbtls_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/mbtls_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/mbtls_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/mbtls_crypto.dir/drbg.cpp.o"
  "CMakeFiles/mbtls_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/mbtls_crypto.dir/gcm.cpp.o"
  "CMakeFiles/mbtls_crypto.dir/gcm.cpp.o.d"
  "CMakeFiles/mbtls_crypto.dir/hkdf.cpp.o"
  "CMakeFiles/mbtls_crypto.dir/hkdf.cpp.o.d"
  "CMakeFiles/mbtls_crypto.dir/hmac.cpp.o"
  "CMakeFiles/mbtls_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/mbtls_crypto.dir/sha2.cpp.o"
  "CMakeFiles/mbtls_crypto.dir/sha2.cpp.o.d"
  "libmbtls_crypto.a"
  "libmbtls_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtls_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
