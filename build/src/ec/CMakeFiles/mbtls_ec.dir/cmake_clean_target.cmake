file(REMOVE_RECURSE
  "libmbtls_ec.a"
)
