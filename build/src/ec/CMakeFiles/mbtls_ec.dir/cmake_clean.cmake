file(REMOVE_RECURSE
  "CMakeFiles/mbtls_ec.dir/ecdh.cpp.o"
  "CMakeFiles/mbtls_ec.dir/ecdh.cpp.o.d"
  "CMakeFiles/mbtls_ec.dir/ecdsa.cpp.o"
  "CMakeFiles/mbtls_ec.dir/ecdsa.cpp.o.d"
  "CMakeFiles/mbtls_ec.dir/p256.cpp.o"
  "CMakeFiles/mbtls_ec.dir/p256.cpp.o.d"
  "libmbtls_ec.a"
  "libmbtls_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtls_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
