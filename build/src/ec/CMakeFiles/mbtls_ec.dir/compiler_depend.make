# Empty compiler generated dependencies file for mbtls_ec.
# This may be replaced when dependencies are built.
