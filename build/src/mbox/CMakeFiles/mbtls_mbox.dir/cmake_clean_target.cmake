file(REMOVE_RECURSE
  "libmbtls_mbox.a"
)
