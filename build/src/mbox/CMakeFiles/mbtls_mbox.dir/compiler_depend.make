# Empty compiler generated dependencies file for mbtls_mbox.
# This may be replaced when dependencies are built.
