file(REMOVE_RECURSE
  "CMakeFiles/mbtls_mbox.dir/cache.cpp.o"
  "CMakeFiles/mbtls_mbox.dir/cache.cpp.o.d"
  "CMakeFiles/mbtls_mbox.dir/compression_proxy.cpp.o"
  "CMakeFiles/mbtls_mbox.dir/compression_proxy.cpp.o.d"
  "CMakeFiles/mbtls_mbox.dir/header_proxy.cpp.o"
  "CMakeFiles/mbtls_mbox.dir/header_proxy.cpp.o.d"
  "CMakeFiles/mbtls_mbox.dir/ids.cpp.o"
  "CMakeFiles/mbtls_mbox.dir/ids.cpp.o.d"
  "CMakeFiles/mbtls_mbox.dir/lz.cpp.o"
  "CMakeFiles/mbtls_mbox.dir/lz.cpp.o.d"
  "libmbtls_mbox.a"
  "libmbtls_mbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtls_mbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
