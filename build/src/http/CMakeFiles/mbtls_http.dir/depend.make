# Empty dependencies file for mbtls_http.
# This may be replaced when dependencies are built.
