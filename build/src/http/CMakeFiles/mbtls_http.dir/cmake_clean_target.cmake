file(REMOVE_RECURSE
  "libmbtls_http.a"
)
