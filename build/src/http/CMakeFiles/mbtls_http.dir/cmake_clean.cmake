file(REMOVE_RECURSE
  "CMakeFiles/mbtls_http.dir/http.cpp.o"
  "CMakeFiles/mbtls_http.dir/http.cpp.o.d"
  "libmbtls_http.a"
  "libmbtls_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtls_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
