file(REMOVE_RECURSE
  "libmbtls_util.a"
)
