file(REMOVE_RECURSE
  "CMakeFiles/mbtls_util.dir/bytes.cpp.o"
  "CMakeFiles/mbtls_util.dir/bytes.cpp.o.d"
  "CMakeFiles/mbtls_util.dir/hex.cpp.o"
  "CMakeFiles/mbtls_util.dir/hex.cpp.o.d"
  "CMakeFiles/mbtls_util.dir/reader.cpp.o"
  "CMakeFiles/mbtls_util.dir/reader.cpp.o.d"
  "CMakeFiles/mbtls_util.dir/writer.cpp.o"
  "CMakeFiles/mbtls_util.dir/writer.cpp.o.d"
  "libmbtls_util.a"
  "libmbtls_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbtls_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
