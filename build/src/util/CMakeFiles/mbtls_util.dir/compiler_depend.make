# Empty compiler generated dependencies file for mbtls_util.
# This may be replaced when dependencies are built.
