
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tls_negative.cpp" "tests/CMakeFiles/test_tls_negative.dir/test_tls_negative.cpp.o" "gcc" "tests/CMakeFiles/test_tls_negative.dir/test_tls_negative.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tls/CMakeFiles/mbtls_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/x509/CMakeFiles/mbtls_x509.dir/DependInfo.cmake"
  "/root/repo/build/src/rsa/CMakeFiles/mbtls_rsa.dir/DependInfo.cmake"
  "/root/repo/build/src/asn1/CMakeFiles/mbtls_asn1.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/mbtls_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/mbtls_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/mbtls_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mbtls_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mbtls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
