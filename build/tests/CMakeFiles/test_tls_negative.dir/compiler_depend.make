# Empty compiler generated dependencies file for test_tls_negative.
# This may be replaced when dependencies are built.
