file(REMOVE_RECURSE
  "CMakeFiles/test_tls_negative.dir/test_tls_negative.cpp.o"
  "CMakeFiles/test_tls_negative.dir/test_tls_negative.cpp.o.d"
  "test_tls_negative"
  "test_tls_negative.pdb"
  "test_tls_negative[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tls_negative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
