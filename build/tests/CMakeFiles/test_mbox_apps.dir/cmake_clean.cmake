file(REMOVE_RECURSE
  "CMakeFiles/test_mbox_apps.dir/test_mbox_apps.cpp.o"
  "CMakeFiles/test_mbox_apps.dir/test_mbox_apps.cpp.o.d"
  "test_mbox_apps"
  "test_mbox_apps.pdb"
  "test_mbox_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mbox_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
