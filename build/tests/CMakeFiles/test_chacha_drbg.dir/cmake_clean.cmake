file(REMOVE_RECURSE
  "CMakeFiles/test_chacha_drbg.dir/test_chacha_drbg.cpp.o"
  "CMakeFiles/test_chacha_drbg.dir/test_chacha_drbg.cpp.o.d"
  "test_chacha_drbg"
  "test_chacha_drbg.pdb"
  "test_chacha_drbg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chacha_drbg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
