# Empty compiler generated dependencies file for test_chacha_drbg.
# This may be replaced when dependencies are built.
