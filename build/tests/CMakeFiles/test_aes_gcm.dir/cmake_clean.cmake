file(REMOVE_RECURSE
  "CMakeFiles/test_aes_gcm.dir/test_aes_gcm.cpp.o"
  "CMakeFiles/test_aes_gcm.dir/test_aes_gcm.cpp.o.d"
  "test_aes_gcm"
  "test_aes_gcm.pdb"
  "test_aes_gcm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aes_gcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
