# Empty dependencies file for test_sha2.
# This may be replaced when dependencies are built.
