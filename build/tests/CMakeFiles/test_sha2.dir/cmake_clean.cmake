file(REMOVE_RECURSE
  "CMakeFiles/test_sha2.dir/test_sha2.cpp.o"
  "CMakeFiles/test_sha2.dir/test_sha2.cpp.o.d"
  "test_sha2"
  "test_sha2.pdb"
  "test_sha2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sha2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
