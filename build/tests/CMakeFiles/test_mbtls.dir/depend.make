# Empty dependencies file for test_mbtls.
# This may be replaced when dependencies are built.
