file(REMOVE_RECURSE
  "CMakeFiles/test_mbtls.dir/test_mbtls.cpp.o"
  "CMakeFiles/test_mbtls.dir/test_mbtls.cpp.o.d"
  "test_mbtls"
  "test_mbtls.pdb"
  "test_mbtls[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mbtls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
