file(REMOVE_RECURSE
  "CMakeFiles/test_mbtls_suites.dir/test_mbtls_suites.cpp.o"
  "CMakeFiles/test_mbtls_suites.dir/test_mbtls_suites.cpp.o.d"
  "test_mbtls_suites"
  "test_mbtls_suites.pdb"
  "test_mbtls_suites[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mbtls_suites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
