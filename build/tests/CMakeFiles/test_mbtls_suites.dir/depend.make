# Empty dependencies file for test_mbtls_suites.
# This may be replaced when dependencies are built.
