file(REMOVE_RECURSE
  "CMakeFiles/test_mctls.dir/test_mctls.cpp.o"
  "CMakeFiles/test_mctls.dir/test_mctls.cpp.o.d"
  "test_mctls"
  "test_mctls.pdb"
  "test_mctls[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mctls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
