# Empty compiler generated dependencies file for test_mctls.
# This may be replaced when dependencies are built.
