file(REMOVE_RECURSE
  "CMakeFiles/test_tls_tickets.dir/test_tls_tickets.cpp.o"
  "CMakeFiles/test_tls_tickets.dir/test_tls_tickets.cpp.o.d"
  "test_tls_tickets"
  "test_tls_tickets.pdb"
  "test_tls_tickets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tls_tickets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
