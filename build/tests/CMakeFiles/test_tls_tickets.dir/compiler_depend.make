# Empty compiler generated dependencies file for test_tls_tickets.
# This may be replaced when dependencies are built.
