# Empty compiler generated dependencies file for test_mbtls_resumption.
# This may be replaced when dependencies are built.
