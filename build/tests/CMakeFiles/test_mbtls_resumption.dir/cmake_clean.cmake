file(REMOVE_RECURSE
  "CMakeFiles/test_mbtls_resumption.dir/test_mbtls_resumption.cpp.o"
  "CMakeFiles/test_mbtls_resumption.dir/test_mbtls_resumption.cpp.o.d"
  "test_mbtls_resumption"
  "test_mbtls_resumption.pdb"
  "test_mbtls_resumption[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mbtls_resumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
