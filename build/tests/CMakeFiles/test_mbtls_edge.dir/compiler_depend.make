# Empty compiler generated dependencies file for test_mbtls_edge.
# This may be replaced when dependencies are built.
