file(REMOVE_RECURSE
  "CMakeFiles/test_mbtls_edge.dir/test_mbtls_edge.cpp.o"
  "CMakeFiles/test_mbtls_edge.dir/test_mbtls_edge.cpp.o.d"
  "test_mbtls_edge"
  "test_mbtls_edge.pdb"
  "test_mbtls_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mbtls_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
