file(REMOVE_RECURSE
  "CMakeFiles/test_asn1.dir/test_asn1.cpp.o"
  "CMakeFiles/test_asn1.dir/test_asn1.cpp.o.d"
  "test_asn1"
  "test_asn1.pdb"
  "test_asn1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asn1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
