# Empty dependencies file for test_asn1.
# This may be replaced when dependencies are built.
