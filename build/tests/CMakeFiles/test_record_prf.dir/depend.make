# Empty dependencies file for test_record_prf.
# This may be replaced when dependencies are built.
