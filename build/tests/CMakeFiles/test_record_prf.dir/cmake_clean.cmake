file(REMOVE_RECURSE
  "CMakeFiles/test_record_prf.dir/test_record_prf.cpp.o"
  "CMakeFiles/test_record_prf.dir/test_record_prf.cpp.o.d"
  "test_record_prf"
  "test_record_prf.pdb"
  "test_record_prf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_record_prf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
