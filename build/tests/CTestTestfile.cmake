# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sha2[1]_include.cmake")
include("/root/repo/build/tests/test_hmac_hkdf[1]_include.cmake")
include("/root/repo/build/tests/test_aes_gcm[1]_include.cmake")
include("/root/repo/build/tests/test_chacha_drbg[1]_include.cmake")
include("/root/repo/build/tests/test_bignum[1]_include.cmake")
include("/root/repo/build/tests/test_ec[1]_include.cmake")
include("/root/repo/build/tests/test_rsa[1]_include.cmake")
include("/root/repo/build/tests/test_asn1[1]_include.cmake")
include("/root/repo/build/tests/test_x509[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_sgx[1]_include.cmake")
include("/root/repo/build/tests/test_tls[1]_include.cmake")
include("/root/repo/build/tests/test_mbtls[1]_include.cmake")
include("/root/repo/build/tests/test_http[1]_include.cmake")
include("/root/repo/build/tests/test_mbox_apps[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_attacks[1]_include.cmake")
include("/root/repo/build/tests/test_mbtls_resumption[1]_include.cmake")
include("/root/repo/build/tests/test_mbtls_edge[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_record_prf[1]_include.cmake")
include("/root/repo/build/tests/test_tls_tickets[1]_include.cmake")
include("/root/repo/build/tests/test_mbtls_suites[1]_include.cmake")
include("/root/repo/build/tests/test_hardening[1]_include.cmake")
include("/root/repo/build/tests/test_tls_negative[1]_include.cmake")
include("/root/repo/build/tests/test_mctls[1]_include.cmake")
