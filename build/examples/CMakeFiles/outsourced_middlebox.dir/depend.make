# Empty dependencies file for outsourced_middlebox.
# This may be replaced when dependencies are built.
