file(REMOVE_RECURSE
  "CMakeFiles/outsourced_middlebox.dir/outsourced_middlebox.cpp.o"
  "CMakeFiles/outsourced_middlebox.dir/outsourced_middlebox.cpp.o.d"
  "outsourced_middlebox"
  "outsourced_middlebox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outsourced_middlebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
