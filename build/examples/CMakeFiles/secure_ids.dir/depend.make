# Empty dependencies file for secure_ids.
# This may be replaced when dependencies are built.
