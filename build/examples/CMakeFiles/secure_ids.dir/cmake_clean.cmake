file(REMOVE_RECURSE
  "CMakeFiles/secure_ids.dir/secure_ids.cpp.o"
  "CMakeFiles/secure_ids.dir/secure_ids.cpp.o.d"
  "secure_ids"
  "secure_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
