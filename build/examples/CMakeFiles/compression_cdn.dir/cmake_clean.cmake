file(REMOVE_RECURSE
  "CMakeFiles/compression_cdn.dir/compression_cdn.cpp.o"
  "CMakeFiles/compression_cdn.dir/compression_cdn.cpp.o.d"
  "compression_cdn"
  "compression_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
