# Empty dependencies file for compression_cdn.
# This may be replaced when dependencies are built.
