# Empty dependencies file for legacy_interop.
# This may be replaced when dependencies are built.
