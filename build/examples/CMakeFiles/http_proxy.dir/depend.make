# Empty dependencies file for http_proxy.
# This may be replaced when dependencies are built.
