# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_http_proxy "/root/repo/build/examples/http_proxy")
set_tests_properties(example_http_proxy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_outsourced_middlebox "/root/repo/build/examples/outsourced_middlebox")
set_tests_properties(example_outsourced_middlebox PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_legacy_interop "/root/repo/build/examples/legacy_interop")
set_tests_properties(example_legacy_interop PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compression_cdn "/root/repo/build/examples/compression_cdn")
set_tests_properties(example_compression_cdn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_secure_ids "/root/repo/build/examples/secure_ids")
set_tests_properties(example_secure_ids PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
